//! The parallel sweep executor: deck → job grid → worker pool →
//! deterministic, index-ordered aggregation.
//!
//! Every (grid point × analysis) pair is an independent job: workers
//! instantiate the deck's circuit with that point's overrides and run the
//! analysis. Jobs are distributed over a `std::thread` pool through mpsc
//! channels, and results are slotted back by job index, so the aggregated
//! output is **identical for any worker count** — `--jobs 1` and
//! `--jobs 8` produce byte-identical artifacts.
//!
//! With [`SweepConfig::warm_start`], jobs are dispatched as continuation
//! **chains** ([`crate::batch::BatchPlan`]) instead of one at a time:
//! each chain walks consecutive points of the fastest-varying sweep
//! axis, seeding every Newton solve from the previous point's converged
//! state ([`Analysis::run_warm`]) and sharing one sparse symbolic
//! analysis (`linsolve::SharedSymbolic`) across the whole chain. The
//! chain layout is a pure function of the grid, and each chain runs on a
//! single worker in a fixed order, so batched aggregates stay
//! byte-identical for any `--jobs` × `--shards` combination.
//!
//! [`run_deck_with`] adds the sweep-service layers on top of the pool —
//! all three preserve that byte-identity:
//!
//! * an optional content-hashed [`ResultCache`], so repeated or
//!   interrupted sweeps recompute only missing jobs (cold and warm runs
//!   produce the same bytes, warm runs just produce them faster). A
//!   warm-started chain position is keyed under [`job_hash_mode`] with
//!   its predecessors' grid values mixed in; a chain is served from the
//!   cache only when *every* owned position hits, and recomputed from
//!   position 0 otherwise, so cached and computed chains carry the same
//!   bytes;
//! * deterministic sharding (`job % shards == shard_index`), so a grid
//!   splits over independent processes with no coordination. A shard
//!   executes every chain containing at least one job it owns,
//!   recomputing non-owned positions as warm-up — computed and cached,
//!   but never recorded, streamed, or counted;
//! * an optional JSON-lines sink receiving one [`JobRecord`] per
//!   completed job in completion order, making long sweeps observable
//!   in flight without perturbing the index-ordered aggregate.

use crate::analysis::{analysis_for, Analysis, ScenarioResult, WarmState};
use crate::batch::BatchPlan;
use crate::cache::{job_hash_mode, ResultCache};
use crate::error::SweepError;
use crate::grid::expand_grid;
use crate::shard::shard_owns;
use crate::stream::{render_record, JobRecord};
use circuitdae::Deck;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

/// One completed job of a sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Grid point index (row-major over the deck's sweep directives).
    pub point: usize,
    /// Swept parameter values at this point (parallel to the labels).
    pub values: Vec<f64>,
    /// Index of the analysis directive in the deck.
    pub analysis_index: usize,
    /// Unique analysis label, e.g. `wampde0`.
    pub analysis: String,
    /// The analysis result.
    pub result: ScenarioResult,
}

/// The aggregated, deterministic result of a deck run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Labels of the swept parameters (`M1.control`, ...).
    pub param_labels: Vec<String>,
    /// The expanded grid, one value vector per point.
    pub grid: Vec<Vec<f64>>,
    /// Unique labels of the deck's analyses (`<keyword><directive idx>`).
    pub analysis_labels: Vec<String>,
    /// All runs, ordered point-major then by analysis — independent of
    /// the worker count.
    pub runs: Vec<RunRecord>,
}

impl SweepOutcome {
    /// Runs of one analysis (by directive index), in grid order.
    pub fn runs_of(&self, analysis_index: usize) -> impl Iterator<Item = &RunRecord> {
        self.runs
            .iter()
            .filter(move |r| r.analysis_index == analysis_index)
    }

    /// Long-format waveform table of one analysis: header
    /// `[point, <params...>, <result columns...>]`, with every grid
    /// point's rows stacked in order. Feed straight into a CSV writer.
    pub fn waveform_table(&self, analysis_index: usize) -> (Vec<String>, Vec<Vec<f64>>) {
        let mut header = vec!["point".to_string()];
        header.extend(self.param_labels.iter().cloned());
        let mut rows = Vec::new();
        let mut first = true;
        for rec in self.runs_of(analysis_index) {
            if first {
                header.extend(rec.result.columns.iter().cloned());
                first = false;
            }
            for row in &rec.result.rows {
                let mut out = Vec::with_capacity(1 + rec.values.len() + row.len());
                out.push(rec.point as f64);
                out.extend_from_slice(&rec.values);
                out.extend_from_slice(row);
                rows.push(out);
            }
        }
        (header, rows)
    }

    /// Per-point metric summary of one analysis: header
    /// `[point, <params...>, <metrics...>]`, one row per grid point.
    pub fn summary_table(&self, analysis_index: usize) -> (Vec<String>, Vec<Vec<f64>>) {
        let mut header = vec!["point".to_string()];
        header.extend(self.param_labels.iter().cloned());
        let mut rows = Vec::new();
        let mut first = true;
        for rec in self.runs_of(analysis_index) {
            if first {
                header.extend(rec.result.metrics.iter().map(|(n, _)| n.clone()));
                first = false;
            }
            let mut out = Vec::with_capacity(1 + rec.values.len() + rec.result.metrics.len());
            out.push(rec.point as f64);
            out.extend_from_slice(&rec.values);
            out.extend(rec.result.metrics.iter().map(|(_, v)| *v));
            rows.push(out);
        }
        (header, rows)
    }
}

/// Configuration for [`run_deck_with`]: worker count, shard layout,
/// batched execution, and the optional on-disk result cache.
#[derive(Debug, Default)]
pub struct SweepConfig {
    /// Worker thread count (clamped to `[1, job count]`; 0 means 1).
    pub jobs: usize,
    /// Total shard count of the layout (0 or 1 means unsharded).
    pub shards: usize,
    /// This process's shard index in `0..shards`.
    pub shard_index: usize,
    /// Content-hashed result cache; `None` recomputes everything.
    pub cache: Option<ResultCache>,
    /// Batched execution: dispatch continuation chains along the
    /// fastest-varying sweep axis, warm-starting each point from its
    /// predecessor and sharing sparse symbolic analysis per chain.
    /// `false` (the default) runs every job independently and cold.
    pub warm_start: bool,
    /// Per-solve thread ceiling for intra-solve parallelism (parallel
    /// BTF block factorisation, circulant-mode LUs, partitioned
    /// stamping and SpMV). `0` (the default) auto-sizes against the
    /// machine: every worker claims one core as its baseline and each
    /// solve dynamically leases whatever is left, so a single chain
    /// gets the whole machine while a sweep wide enough to fill every
    /// core degrades to serial solves. A nonzero value is honored
    /// exactly for every solve. Either way results are bitwise
    /// identical to serial — this knob trades wall-clock only.
    pub solver_threads: usize,
}

/// Observability counters for one sweep run. Cache hits change these,
/// never the [`SweepOutcome`] itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Job count of the whole sweep (all shards).
    pub jobs_total: usize,
    /// Jobs owned by this shard.
    pub jobs_here: usize,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Jobs actually computed by a solver.
    pub executed: usize,
}

/// A completed sweep: the deterministic outcome plus run counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRun {
    /// The index-ordered, worker-count-independent result.
    pub outcome: SweepOutcome,
    /// How the work was served (cache hits vs. solver runs).
    pub stats: SweepStats,
}

/// Expands a deck's sweep grid and runs every (point × analysis) job on a
/// pool of `jobs` worker threads (clamped to `[1, job count]`).
///
/// Results are aggregated in job-index order, so the outcome is
/// deterministic and independent of `jobs`. On failure the error of the
/// *lowest-indexed* failing job is returned (also independent of `jobs`);
/// queued jobs above the failure are skipped rather than run to
/// completion.
///
/// Equivalent to [`run_deck_with`] with no cache, no sharding, and no
/// stream sink.
///
/// # Errors
///
/// [`SweepError::BadInput`] for a deck without analyses, otherwise the
/// first failing job's error wrapped in [`SweepError::Job`].
pub fn run_deck(deck: &Deck, jobs: usize) -> Result<SweepOutcome, SweepError> {
    run_deck_with(
        deck,
        &SweepConfig {
            jobs,
            ..SweepConfig::default()
        },
        None,
    )
    .map(|run| run.outcome)
}

/// The full sweep-service entry point: worker pool plus content-hashed
/// caching, deterministic sharding, and JSON-lines streaming.
///
/// With a [`SweepConfig::cache`], each job's content hash (deck
/// fingerprint, grid-point values, analysis-spec fingerprint,
/// code-version salt) is looked up before running a solver; hits are
/// returned as-is and misses are computed and stored atomically, so an
/// interrupted or repeated sweep recomputes only what is missing. With
/// `shards > 1`, only jobs with `id % shards == shard_index` run and
/// the outcome contains exactly those runs (feed the shard outputs to
/// [`crate::shard::merge_shards`]). With a `sink`, one JSON line per
/// completed job ([`JobRecord`]) is written in completion order —
/// nondeterministic on the wire, while the returned outcome stays
/// index-ordered.
///
/// None of the three layers changes a single result bit: outputs are
/// identical for any worker count, any shard layout (after merge), and
/// cold vs. warm cache.
///
/// # Errors
///
/// [`SweepError::BadInput`] for a deck without analyses or an invalid
/// shard layout, [`SweepError::Io`] if the sink rejects a write,
/// otherwise the lowest-indexed failing job's error wrapped in
/// [`SweepError::Job`]. Failed jobs are never cached.
pub fn run_deck_with(
    deck: &Deck,
    config: &SweepConfig,
    mut sink: Option<&mut dyn io::Write>,
) -> Result<SweepRun, SweepError> {
    let analyses: Vec<Box<dyn Analysis>> = deck.analyses.iter().map(analysis_for).collect();
    if analyses.is_empty() {
        return Err(SweepError::BadInput(
            "deck has no analysis directive (.tran/.shooting/.mpde/.wampde)".into(),
        ));
    }
    let shards = config.shards.max(1);
    if config.shard_index >= shards {
        return Err(SweepError::BadInput(format!(
            "shard index {} out of range for {} shards",
            config.shard_index, shards
        )));
    }
    let analysis_labels: Vec<String> = analyses
        .iter()
        .enumerate()
        .map(|(i, a)| format!("{}{i}", a.name()))
        .collect();
    let grid = expand_grid(&deck.sweeps);
    let n_jobs = grid.len() * analyses.len();
    let owned: Vec<usize> = (0..n_jobs)
        .filter(|&id| shard_owns(id, shards, config.shard_index))
        .collect();
    // Chain layout: continuation runs along the fastest-varying (last)
    // sweep axis when warm starts are on, singleton chains otherwise.
    let run_len = deck.sweeps.last().map_or(1, |s| s.points.max(1));
    let plan = BatchPlan::new(&grid, run_len, analyses.len(), config.warm_start);
    let shard_index = config.shard_index;
    // A shard executes every chain containing at least one owned job.
    let dispatch: Vec<usize> = (0..plan.chains().len())
        .filter(|&ci| {
            plan.chains()[ci]
                .iter()
                .any(|&id| shard_owns(id, shards, shard_index))
        })
        .collect();
    let workers = config.jobs.max(1).min(dispatch.len().max(1));

    // Shared core budget for intra-solve parallelism: `jobs × solver
    // threads` never exceeds the machine. Workers claim one baseline
    // core each; solves lease the rest dynamically (auto) or exactly
    // `solver_threads` (explicit). Thread counts never change results.
    let cores = linsolve::resolve_thread_count(0);
    let core_budget = if config.solver_threads == 0 {
        linsolve::CoreBudget::new(cores, cores)
    } else {
        linsolve::CoreBudget::new(
            cores.max(workers * config.solver_threads),
            config.solver_threads,
        )
    };

    // The hash inputs are computed once; workers only concatenate.
    let deck_fp = deck.fingerprint();
    let spec_fps: Vec<String> = deck.analyses.iter().map(|a| a.fingerprint()).collect();

    // Chain dispatch and result return both ride std channels; the single
    // consumed receiver is shared behind a mutex (std-only work queue).
    let (job_tx, job_rx) = mpsc::channel::<usize>();
    for &ci in &dispatch {
        job_tx.send(ci).expect("queue chains");
    }
    drop(job_tx);
    let job_rx = Mutex::new(job_rx);
    type JobOutcome = Result<(ScenarioResult, bool), SweepError>;
    let (res_tx, res_rx) = mpsc::channel::<(usize, JobOutcome)>();

    let mut slots: Vec<Option<ScenarioResult>> = vec![None; n_jobs];
    let mut first_failure: Option<(usize, SweepError)> = None;
    let mut stats = SweepStats {
        jobs_total: n_jobs,
        jobs_here: owned.len(),
        ..SweepStats::default()
    };
    let mut sink_error: Option<io::Error> = None;

    // Lowest failing job index seen so far; jobs above it are skipped so
    // a failing grid does not burn the whole remaining budget. Jobs
    // *below* it still run, so the reported error is always the overall
    // lowest-indexed failure, independent of worker count.
    let cancel_above = AtomicUsize::new(usize::MAX);

    // Instrumentation: the whole pool runs under one "sweep" span, and
    // workers re-install the recorder handle so their "job" spans parent
    // under it. Recording never touches results — traced and untraced
    // sweeps are byte-identical.
    let sweep_span = obskit::span("sweep");
    sweep_span.attr("jobs_total", n_jobs);
    sweep_span.attr("jobs_here", owned.len());
    sweep_span.attr("workers", workers);
    sweep_span.attr("shards", shards);
    sweep_span.attr("chains", dispatch.len());
    sweep_span.attr("solver_cap", core_budget.solver_cap());
    let obs_handle = obskit::current();

    thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = &job_rx;
            let res_tx = res_tx.clone();
            let plan = &plan;
            let analyses = &analyses;
            let cancel_above = &cancel_above;
            let cache = config.cache.as_ref();
            let deck_fp = &deck_fp;
            let spec_fps = &spec_fps;
            let obs_handle = obs_handle.clone();
            let core_budget = &core_budget;
            scope.spawn(move || {
                let _obs = obs_handle.map(obskit::install_handle);
                // Baseline claim + ambient install: solver layers under
                // this worker lease their extra threads from the shared
                // budget (see `linsolve::CoreBudget`).
                let _core = core_budget.occupy(1);
                let _budget = core_budget.install();
                let is_owned = |id: usize| shard_owns(id, shards, shard_index);
                'chains: loop {
                    let ci = match job_rx.lock().expect("job queue lock").recv() {
                        Ok(ci) => ci,
                        Err(_) => break, // queue drained
                    };
                    let chain = &plan.chains()[ci];
                    let still_wanted = |from: usize| {
                        let limit = cancel_above.load(Ordering::Relaxed);
                        chain[from..].iter().any(|&id| is_owned(id) && id <= limit)
                    };
                    if !still_wanted(0) {
                        continue; // a lower-indexed job already failed
                    }

                    // Per-position cache keys. Position 0 is computed
                    // cold, so its key is the plain job hash (byte-shared
                    // with unbatched runs); a later position's key mixes
                    // in the grid values of every predecessor it was
                    // warm-started through.
                    let hashes: Option<Vec<String>> = cache.map(|_| {
                        let mut upstream = String::from("warm:");
                        chain
                            .iter()
                            .enumerate()
                            .map(|(k, &id)| {
                                let point = plan.point_of(id);
                                let values = plan.point_values(point);
                                let mode = if k == 0 { "" } else { upstream.as_str() };
                                let h = job_hash_mode(
                                    deck_fp,
                                    values,
                                    &spec_fps[plan.analysis_of(id)],
                                    mode,
                                );
                                for v in values {
                                    upstream.push_str(&format!("{:016x}", v.to_bits()));
                                }
                                h
                            })
                            .collect()
                    });

                    // Serve the chain from the cache only when every owned
                    // position hits; any miss recomputes the whole chain
                    // from position 0 so warm seeds are always available.
                    if let (Some(cache), Some(hashes)) = (cache, hashes.as_ref()) {
                        let mut served: Vec<(usize, ScenarioResult)> = Vec::new();
                        let all_hit = chain.iter().enumerate().all(|(k, &id)| {
                            if !is_owned(id) {
                                return true;
                            }
                            match cache.load(&hashes[k]) {
                                Some(result) => {
                                    served.push((id, result));
                                    true
                                }
                                None => false,
                            }
                        });
                        if all_hit {
                            for (id, result) in served {
                                let job_span = obskit::span("job");
                                job_span.attr("job", id);
                                job_span.attr("point", plan.point_of(id));
                                job_span.attr("served", "cache");
                                obskit::counter_add("sweep.cache_hits", 1);
                                if res_tx.send((id, Ok((result, true)))).is_err() {
                                    break 'chains; // main thread gave up
                                }
                            }
                            continue;
                        }
                    }

                    // Recompute front to back: one shared symbolic pool
                    // and a rolling warm state for the whole chain.
                    let shared = linsolve::SharedSymbolic::new();
                    let _symbolic = shared.install();
                    let mut warm: Option<WarmState> = None;
                    let mut anchor_iters: Option<f64> = None;
                    for (k, &id) in chain.iter().enumerate() {
                        if !still_wanted(k) {
                            break; // nothing left downstream is wanted
                        }
                        let point = plan.point_of(id);
                        let a = plan.analysis_of(id);
                        let job_span = obskit::span("job");
                        job_span.attr("job", id);
                        job_span.attr("point", point);
                        let run_pos =
                            || -> Result<(ScenarioResult, Option<WarmState>), SweepError> {
                                let dae = deck.instantiate(plan.point_values(point))?;
                                analyses[a].run_warm(&dae, warm.as_ref())
                            };
                        match run_pos() {
                            Ok((result, next_warm)) => {
                                if let (Some(cache), Some(hashes)) = (cache, hashes.as_ref()) {
                                    // Best-effort: a read-only or full cache
                                    // directory slows future runs, it must
                                    // not fail this one.
                                    let _ = cache.store(&hashes[k], &result);
                                }
                                // The chain's cold anchor calibrates how many
                                // Newton iterations each warm start saves.
                                let iters = newton_iters_of(&result);
                                match (k, anchor_iters, iters) {
                                    (0, _, _) => anchor_iters = iters,
                                    (_, Some(anchor), Some(this)) if anchor > this => {
                                        obskit::counter_add(
                                            "newton.warm_start_iters_saved",
                                            (anchor - this) as u64,
                                        );
                                    }
                                    _ => {}
                                }
                                warm = next_warm;
                                job_span.attr("served", "solver");
                                if is_owned(id) {
                                    obskit::counter_add("sweep.executed", 1);
                                    if res_tx.send((id, Ok((result, false)))).is_err() {
                                        break 'chains; // main thread gave up
                                    }
                                }
                                // Non-owned positions are warm-up only:
                                // cached for the owning shard, never
                                // recorded or counted here.
                            }
                            Err(e) => {
                                // No converged state to continue from, so the
                                // chain remainder is unreachable. Surface the
                                // failure at the first still-pending owned
                                // position (the owning shard of a non-owned
                                // failing warm-up hits the same error there).
                                if let Some(fid) = chain[k..].iter().copied().find(|&j| is_owned(j))
                                {
                                    if res_tx.send((fid, Err(e))).is_err() {
                                        break 'chains;
                                    }
                                }
                                break;
                            }
                        }
                    }
                }
            });
        }
        drop(res_tx);
        for (id, res) in res_rx {
            match res {
                Ok((result, cached)) => {
                    if cached {
                        stats.cache_hits += 1;
                    } else {
                        stats.executed += 1;
                    }
                    if let Some(sink) = sink.as_deref_mut() {
                        if sink_error.is_none() {
                            let point = id / analyses.len();
                            let a = id % analyses.len();
                            let rec = JobRecord {
                                job: id,
                                point,
                                analysis_index: a,
                                analysis: analysis_labels[a].clone(),
                                cached,
                                values: grid[point].clone(),
                                result: result.clone(),
                            };
                            if let Err(e) = writeln!(sink, "{}", render_record(&rec)) {
                                sink_error = Some(e);
                            }
                        }
                    }
                    slots[id] = Some(result);
                }
                Err(e) => {
                    cancel_above.fetch_min(id, Ordering::Relaxed);
                    // Keep the lowest-indexed failure so the reported
                    // error does not depend on worker scheduling.
                    if first_failure.as_ref().is_none_or(|(fid, _)| id < *fid) {
                        first_failure = Some((id, e));
                    }
                }
            }
        }
    });

    if let Some((id, cause)) = first_failure {
        return Err(SweepError::Job {
            point: id / analyses.len(),
            analysis: analysis_labels[id % analyses.len()].clone(),
            cause: Box::new(cause),
        });
    }
    if let Some(e) = sink_error {
        return Err(SweepError::Io(format!("result stream: {e}")));
    }

    let runs = owned
        .iter()
        .map(|&id| {
            let point = id / analyses.len();
            let a = id % analyses.len();
            RunRecord {
                point,
                values: grid[point].clone(),
                analysis_index: a,
                analysis: analysis_labels[a].clone(),
                result: slots[id].take().expect("every owned job completed"),
            }
        })
        .collect();

    Ok(SweepRun {
        outcome: SweepOutcome {
            param_labels: deck.sweeps.iter().map(|s| s.label()).collect(),
            grid,
            analysis_labels,
            runs,
        },
        stats,
    })
}

/// Newton iteration count reported by an analysis, for the
/// `newton.warm_start_iters_saved` counter. Prefers the uniform
/// `newton_iters` metric, falling back to shooting's historical
/// `iterations`.
fn newton_iters_of(result: &ScenarioResult) -> Option<f64> {
    ["newton_iters", "iterations"].iter().find_map(|key| {
        result
            .metrics
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, v)| *v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::parse_deck;

    /// Sine-driven RC low-pass with a 3-point resistance sweep: cheap to
    /// run many times, and the output amplitude depends on R (the corner
    /// frequency moves), so results differ per grid point. A DC drive
    /// would start at its operating point and never move.
    const RC_DECK: &str = "V1 in 0 SIN(0 5 1k)\n\
                           R1 in out 1k\n\
                           C1 out 0 1u\n\
                           .tran 2m dt=20u\n\
                           .sweep R1 1k 3k 3\n";

    #[test]
    fn runs_all_grid_points_in_order() {
        let deck = parse_deck(RC_DECK).unwrap();
        let out = run_deck(&deck, 2).unwrap();
        assert_eq!(out.param_labels, vec!["R1"]);
        assert_eq!(out.grid.len(), 3);
        assert_eq!(out.runs.len(), 3);
        assert_eq!(out.analysis_labels, vec!["tran0"]);
        for (i, rec) in out.runs.iter().enumerate() {
            assert_eq!(rec.point, i);
            assert_eq!(rec.values, out.grid[i]);
        }
        // Larger R lowers the corner frequency, so the settled output
        // amplitude of the 1 kHz drive decreases along the grid.
        let vout = out.runs[0].result.column("v(out)").unwrap();
        let amps: Vec<f64> = out
            .runs
            .iter()
            .map(|r| {
                let half = r.result.rows.len() / 2;
                r.result.rows[half..]
                    .iter()
                    .fold(0.0_f64, |m, row| m.max(row[vout].abs()))
            })
            .collect();
        assert!(
            amps[0] > 1.2 * amps[1] && amps[1] > 1.2 * amps[2],
            "{amps:?}"
        );
    }

    #[test]
    fn outcome_is_independent_of_worker_count() {
        let deck = parse_deck(RC_DECK).unwrap();
        let one = run_deck(&deck, 1).unwrap();
        let four = run_deck(&deck, 4).unwrap();
        assert_eq!(one, four);
        let (h1, r1) = one.waveform_table(0);
        let (h4, r4) = four.waveform_table(0);
        assert_eq!(h1, h4);
        assert_eq!(r1.len(), r4.len());
        for (a, b) in r1.iter().zip(r4.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn tables_have_expected_shape() {
        let deck = parse_deck(RC_DECK).unwrap();
        let out = run_deck(&deck, 3).unwrap();
        let (header, rows) = out.waveform_table(0);
        assert_eq!(header[..2], ["point".to_string(), "R1".to_string()]);
        assert_eq!(header.len(), 2 + out.runs[0].result.columns.len());
        assert_eq!(
            rows.len(),
            out.runs.iter().map(|r| r.result.rows.len()).sum::<usize>()
        );
        let (sh, sr) = out.summary_table(0);
        assert_eq!(sr.len(), 3);
        assert!(sh.contains(&"steps".to_string()));
        // Summary rows carry the swept value in column 1.
        assert_eq!(sr[2][1], 3000.0);
    }

    #[test]
    fn bad_phase_var_is_an_error_not_a_panic() {
        // An out-of-range phase_var must surface as a Job error through
        // the pool, not panic a worker thread.
        let deck = parse_deck(
            "C1 tank 0 4.503n\n\
             L1 tank 0 10u\n\
             GN1 tank 0 5m 1.667m\n\
             .shooting phase_var=9\n",
        )
        .unwrap();
        let err = run_deck(&deck, 2).unwrap_err();
        match err {
            SweepError::Job { point, cause, .. } => {
                assert_eq!(point, 0);
                assert!(matches!(*cause, SweepError::Shooting(_)), "{cause}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn no_analysis_is_rejected() {
        let deck = parse_deck("R1 a 0 1k\nC1 a 0 1n\n").unwrap();
        assert!(matches!(run_deck(&deck, 1), Err(SweepError::BadInput(_))));
    }

    #[test]
    fn warm_cache_returns_identical_outcome() {
        let deck = parse_deck(RC_DECK).unwrap();
        let dir = std::env::temp_dir().join(format!("sweepkit-exec-warm-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = SweepConfig {
            jobs: 2,
            cache: Some(ResultCache::open(&dir).unwrap()),
            ..SweepConfig::default()
        };
        let cold = run_deck_with(&deck, &config, None).unwrap();
        assert_eq!(cold.stats.executed, 3);
        assert_eq!(cold.stats.cache_hits, 0);
        let warm = run_deck_with(&deck, &config, None).unwrap();
        assert_eq!(warm.stats.executed, 0);
        assert_eq!(warm.stats.cache_hits, 3);
        assert_eq!(cold.outcome, warm.outcome);
        // And both equal the cache-free path.
        assert_eq!(cold.outcome, run_deck(&deck, 1).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn solver_threads_do_not_change_results() {
        // Intra-solve parallelism (explicit and auto) must leave the
        // outcome byte-identical to serial solves.
        let deck = parse_deck(RC_DECK).unwrap();
        let serial = run_deck_with(
            &deck,
            &SweepConfig {
                jobs: 1,
                solver_threads: 1,
                ..SweepConfig::default()
            },
            None,
        )
        .unwrap();
        for (jobs, solver_threads) in [(1, 4), (2, 4), (2, 0)] {
            let parallel = run_deck_with(
                &deck,
                &SweepConfig {
                    jobs,
                    solver_threads,
                    ..SweepConfig::default()
                },
                None,
            )
            .unwrap();
            assert_eq!(
                serial.outcome, parallel.outcome,
                "jobs={jobs} solver_threads={solver_threads}"
            );
        }
    }

    #[test]
    fn shards_partition_the_grid_and_merge_back() {
        let deck = parse_deck(RC_DECK).unwrap();
        let full = run_deck(&deck, 2).unwrap();
        let mut shard_runs = Vec::new();
        for k in 0..2 {
            let config = SweepConfig {
                jobs: 2,
                shards: 2,
                shard_index: k,
                ..SweepConfig::default()
            };
            let run = run_deck_with(&deck, &config, None).unwrap();
            assert_eq!(run.stats.jobs_total, 3);
            shard_runs.push(run.outcome);
        }
        assert_eq!(shard_runs[0].runs.len(), 2); // jobs 0, 2
        assert_eq!(shard_runs[1].runs.len(), 1); // job 1
        let mut merged: Vec<&RunRecord> = shard_runs.iter().flat_map(|o| o.runs.iter()).collect();
        merged.sort_by_key(|r| r.point * full.analysis_labels.len() + r.analysis_index);
        assert_eq!(merged.len(), full.runs.len());
        for (a, b) in merged.iter().zip(full.runs.iter()) {
            assert_eq!(**a, *b);
        }
    }

    #[test]
    fn sink_streams_one_parseable_line_per_job() {
        let deck = parse_deck(RC_DECK).unwrap();
        let mut buf = Vec::new();
        let run = run_deck_with(
            &deck,
            &SweepConfig {
                jobs: 2,
                ..SweepConfig::default()
            },
            Some(&mut buf),
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut records: Vec<crate::stream::JobRecord> = text
            .lines()
            .map(|l| crate::stream::parse_record(l).unwrap())
            .collect();
        assert_eq!(records.len(), 3);
        // Wire order is completion order; index order must reconstruct
        // the outcome exactly.
        records.sort_by_key(|r| r.job);
        for (rec, run) in records.iter().zip(run.outcome.runs.iter()) {
            assert_eq!(rec.point, run.point);
            assert_eq!(rec.analysis, run.analysis);
            assert!(!rec.cached);
            assert_eq!(rec.result, run.result);
        }
    }

    #[test]
    fn bad_shard_layout_is_rejected() {
        let deck = parse_deck(RC_DECK).unwrap();
        let config = SweepConfig {
            jobs: 1,
            shards: 2,
            shard_index: 2,
            ..SweepConfig::default()
        };
        assert!(matches!(
            run_deck_with(&deck, &config, None),
            Err(SweepError::BadInput(_))
        ));
    }

    #[test]
    fn batched_outcome_is_independent_of_workers_and_shards() {
        let deck = parse_deck(RC_DECK).unwrap();
        let warm = |jobs| SweepConfig {
            jobs,
            warm_start: true,
            ..SweepConfig::default()
        };
        let one = run_deck_with(&deck, &warm(1), None).unwrap();
        let four = run_deck_with(&deck, &warm(4), None).unwrap();
        assert_eq!(one.outcome, four.outcome);
        assert_eq!(one.stats.executed, 3);
        // Sharded batched runs recompute non-owned warm-up positions but
        // record (and count) owned jobs only, merging back bit-for-bit.
        let mut merged: Vec<RunRecord> = Vec::new();
        for k in 0..2 {
            let run = run_deck_with(
                &deck,
                &SweepConfig {
                    jobs: 2,
                    shards: 2,
                    shard_index: k,
                    warm_start: true,
                    ..SweepConfig::default()
                },
                None,
            )
            .unwrap();
            assert_eq!(run.stats.jobs_here, run.outcome.runs.len());
            assert_eq!(run.stats.executed, run.outcome.runs.len());
            merged.extend(run.outcome.runs);
        }
        merged.sort_by_key(|r| r.point);
        assert_eq!(merged, one.outcome.runs);
    }

    #[test]
    fn warm_start_agrees_with_cold_within_solver_tolerance() {
        let deck = parse_deck(RC_DECK).unwrap();
        let cold = run_deck(&deck, 1).unwrap();
        let warm = run_deck_with(
            &deck,
            &SweepConfig {
                jobs: 1,
                warm_start: true,
                ..SweepConfig::default()
            },
            None,
        )
        .unwrap();
        let (_, cold_rows) = cold.waveform_table(0);
        let (_, warm_rows) = warm.outcome.waveform_table(0);
        assert_eq!(cold_rows.len(), warm_rows.len());
        for (a, b) in cold_rows.iter().zip(warm_rows.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn batched_cache_serves_whole_chains_on_rerun() {
        let deck = parse_deck(RC_DECK).unwrap();
        let dir = std::env::temp_dir().join(format!("sweepkit-exec-chain-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = SweepConfig {
            jobs: 2,
            cache: Some(ResultCache::open(&dir).unwrap()),
            warm_start: true,
            ..SweepConfig::default()
        };
        let cold = run_deck_with(&deck, &config, None).unwrap();
        assert_eq!(cold.stats.executed, 3);
        let rerun = run_deck_with(&deck, &config, None).unwrap();
        assert_eq!(rerun.stats.executed, 0);
        assert_eq!(rerun.stats.cache_hits, 3);
        assert_eq!(cold.outcome, rerun.outcome);
        // Dropping any one entry forces the whole chain to recompute
        // (warm positions need their predecessors), reproducing the same
        // bytes.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().is_some_and(|x| x == "sweepres"))
            .unwrap();
        std::fs::remove_file(entry.path()).unwrap();
        let partial = run_deck_with(&deck, &config, None).unwrap();
        assert_eq!(partial.stats.executed, 3);
        assert_eq!(partial.outcome, cold.outcome);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_point_reports_lowest_job_index() {
        // Sweep a diode's vt through a negative value: points 0 and 1
        // are invalid at instantiation time, point 2 is fine. The parser
        // would reject this, so build the failure via a valid parse and a
        // deck with values that fail only for the mpde node check.
        let deck = parse_deck(
            "R1 out 0 1k\n\
             C1 out 0 1n\n\
             .mpde 1meg 1m node=5\n\
             .sweep R1 1k 2k 2\n",
        )
        .unwrap();
        let err = run_deck(&deck, 4).unwrap_err();
        match err {
            SweepError::Job {
                point, analysis, ..
            } => {
                assert_eq!(point, 0);
                assert_eq!(analysis, "mpde0");
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
