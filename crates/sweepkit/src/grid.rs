//! Sweep-grid expansion: directives to an ordered list of grid points.

use circuitdae::SweepSpec;

/// Expands sweep directives into the full cartesian grid, row-major: the
/// *first* directive varies slowest, the last varies fastest. With no
/// sweeps the grid is a single empty point (one unswept run).
///
/// Each returned point is the value vector to hand to
/// [`circuitdae::Deck::instantiate`].
pub fn expand_grid(sweeps: &[SweepSpec]) -> Vec<Vec<f64>> {
    let axes: Vec<Vec<f64>> = sweeps.iter().map(SweepSpec::values).collect();
    let total: usize = axes.iter().map(Vec::len).product();
    let mut grid = Vec::with_capacity(total);
    let mut point = vec![0.0; axes.len()];
    let mut indices = vec![0usize; axes.len()];
    for _ in 0..total {
        for (k, &i) in indices.iter().enumerate() {
            point[k] = axes[k][i];
        }
        grid.push(point.clone());
        // Odometer increment, last axis fastest.
        for k in (0..indices.len()).rev() {
            indices[k] += 1;
            if indices[k] < axes[k].len() {
                break;
            }
            indices[k] = 0;
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(from: f64, to: f64, points: usize) -> SweepSpec {
        SweepSpec {
            device: "R1".into(),
            field: None,
            from,
            to,
            points,
            log: false,
        }
    }

    #[test]
    fn empty_sweep_list_is_one_unswept_point() {
        assert_eq!(expand_grid(&[]), vec![Vec::<f64>::new()]);
    }

    #[test]
    fn single_axis_in_order() {
        let g = expand_grid(&[sweep(0.0, 1.0, 3)]);
        assert_eq!(g, vec![vec![0.0], vec![0.5], vec![1.0]]);
    }

    #[test]
    fn two_axes_row_major_first_slowest() {
        let g = expand_grid(&[sweep(0.0, 1.0, 2), sweep(10.0, 30.0, 3)]);
        assert_eq!(
            g,
            vec![
                vec![0.0, 10.0],
                vec![0.0, 20.0],
                vec![0.0, 30.0],
                vec![1.0, 10.0],
                vec![1.0, 20.0],
                vec![1.0, 30.0],
            ]
        );
    }
}
