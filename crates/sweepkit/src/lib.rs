//! Scenario decks to parallel experiment runs.
//!
//! The four solver entry points of this workspace (`transim`, `shooting`,
//! `mpde`, `wampde`) historically had unrelated APIs, so comparing
//! methods or sweeping a VCO control input meant new Rust code each time.
//! This crate turns a text *deck* (circuit cards + analysis/sweep
//! directives, see [`circuitdae::netlist::parse_deck`]) into versioned,
//! reproducible experiment runs:
//!
//! * [`Analysis`] — one uniform `run(&CircuitDae) -> ScenarioResult`
//!   interface wrapping all four solvers ([`analysis_for`] dispatches a
//!   parsed directive);
//! * [`expand_grid`] — `.sweep` directives to a row-major value grid;
//! * [`run_deck`] — the executor: every (grid point × analysis) pair
//!   becomes a job on a std-only worker pool (`std::thread` + mpsc
//!   channels), with results aggregated in job-index order so the outcome
//!   is **byte-identical for any `--jobs` count**;
//! * [`run_deck_with`] — the sweep *service* layer on top: a
//!   content-hashed on-disk [`ResultCache`] (interrupted or repeated
//!   sweeps recompute only missing jobs), deterministic sharding
//!   (`job % shards == shard_index`, reassembled by [`merge_shards`]),
//!   and JSON-lines streaming of per-job results — none of which
//!   changes a single output bit;
//! * [`SweepError`] — one error type the whole stack converts into, so
//!   deck-driven code composes with `?`.
//!
//! # Example
//!
//! ```
//! use circuitdae::parse_deck;
//! use sweepkit::run_deck;
//!
//! # fn main() -> Result<(), sweepkit::SweepError> {
//! let deck = parse_deck(
//!     "V1 in 0 DC(5)\n\
//!      R1 in out 1k\n\
//!      C1 out 0 1u\n\
//!      .tran 2m dt=20u\n\
//!      .sweep R1 1k 3k 3\n",
//! )?;
//! let outcome = run_deck(&deck, 2)?;
//! assert_eq!(outcome.runs.len(), 3); // one transient per grid point
//! let (header, rows) = outcome.summary_table(0);
//! assert_eq!(header[1], "R1");
//! assert_eq!(rows.len(), 3);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod batch;
pub mod cache;
pub mod error;
pub mod executor;
pub mod grid;
pub mod shard;
pub mod stream;

pub use analysis::{analysis_for, Analysis, ScenarioResult, WarmState};
pub use batch::BatchPlan;
pub use cache::{job_hash, job_hash_mode, ResultCache, CACHE_SALT};
pub use error::SweepError;
pub use executor::{
    run_deck, run_deck_with, RunRecord, SweepConfig, SweepOutcome, SweepRun, SweepStats,
};
pub use grid::expand_grid;
pub use shard::{
    deck_hash, merge_shards, parse_shard_manifest, render_shard_manifest, shard_owns,
    ShardManifest, SHARD_MANIFEST_FORMAT,
};
pub use stream::{parse_json, parse_record, render_record, JobRecord, Json};
