//! Deterministic grid sharding and shard-merge.
//!
//! A sweep's job grid can be split across `M` independent processes (or
//! machines): shard `k` of `M` runs exactly the jobs with
//! `job_id % M == k` ([`shard_owns`]) — a static, deterministic
//! assignment that needs no coordination. Each shard writes its results
//! as JSON-lines ([`crate::stream`]) plus a [`ShardManifest`] describing
//! the deck, the layout, and the exact grid. [`merge_shards`] then
//! reassembles the full, index-ordered [`SweepOutcome`] from any
//! complete set of shards — 1-shard and 4-shard layouts produce
//! byte-identical aggregates, because floats ride the wire exactly and
//! ordering is by job id, never by arrival.

use crate::cache::job_hash;
use crate::error::SweepError;
use crate::executor::{RunRecord, SweepOutcome};
use crate::stream::{parse_json, JobRecord, Json};
use circuitdae::Deck;

/// Shard-manifest format version (bump on schema change).
pub const SHARD_MANIFEST_FORMAT: u32 = 1;

/// Does shard `shard_index` of `shards` own job `job`?
pub fn shard_owns(job: usize, shards: usize, shard_index: usize) -> bool {
    job % shards.max(1) == shard_index
}

/// A stable identity for "the same sweep": circuit cards, sweep
/// bindings, every analysis option, and the code-version salt. Two
/// shards merge only if their deck hashes agree.
pub fn deck_hash(deck: &Deck) -> String {
    let specs: Vec<String> = deck.analyses.iter().map(|a| a.fingerprint()).collect();
    job_hash(&deck.fingerprint(), &[], &specs.join(";"))
}

/// One shard's self-description, written next to its JSONL results.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Deck path as given on the command line (informational; identity
    /// is `deck_hash`).
    pub deck: String,
    /// [`deck_hash`] of the deck this shard ran.
    pub deck_hash: String,
    /// Total shard count of this layout.
    pub shards: usize,
    /// This shard's index in `0..shards`.
    pub shard_index: usize,
    /// Total job count of the whole sweep (all shards).
    pub jobs_total: usize,
    /// Labels of the swept parameters.
    pub param_labels: Vec<String>,
    /// Unique labels of the deck's analyses.
    pub analysis_labels: Vec<String>,
    /// The full expanded grid (exact values), one vector per point.
    pub grid: Vec<Vec<f64>>,
    /// File name of this shard's JSONL results, relative to the
    /// manifest's own directory.
    pub results: String,
}

impl ShardManifest {
    /// The job ids this shard owns, ascending.
    pub fn jobs_here(&self) -> Vec<usize> {
        (0..self.jobs_total)
            .filter(|&id| shard_owns(id, self.shards, self.shard_index))
            .collect()
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn fmt_str_list(items: &[String]) -> String {
    let words: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    words.join(", ")
}

/// Renders a shard manifest as pretty-printed JSON.
pub fn render_shard_manifest(m: &ShardManifest) -> String {
    let jobs_here: Vec<String> = m.jobs_here().iter().map(usize::to_string).collect();
    let grid: Vec<String> = m
        .grid
        .iter()
        .map(|p| {
            let vals: Vec<String> = p.iter().map(|&v| fmt_f64(v)).collect();
            format!("[{}]", vals.join(", "))
        })
        .collect();
    format!(
        "{{\n  \"format\": {format},\n  \"deck\": \"{deck}\",\n  \"deck_hash\": \"{hash}\",\n  \
         \"shards\": {shards},\n  \"shard_index\": {index},\n  \"jobs_total\": {total},\n  \
         \"jobs_here\": [{here}],\n  \"params\": [{params}],\n  \"analyses\": [{analyses}],\n  \
         \"grid\": [{grid}],\n  \"results\": \"{results}\"\n}}\n",
        format = SHARD_MANIFEST_FORMAT,
        deck = m.deck.replace('\\', "\\\\").replace('"', "\\\""),
        hash = m.deck_hash,
        shards = m.shards,
        index = m.shard_index,
        total = m.jobs_total,
        here = jobs_here.join(", "),
        params = fmt_str_list(&m.param_labels),
        analyses = fmt_str_list(&m.analysis_labels),
        grid = grid.join(", "),
        results = m.results.replace('\\', "\\\\").replace('"', "\\\""),
    )
}

fn str_list(v: Option<&Json>, what: &str) -> Result<Vec<String>, String> {
    v.and_then(Json::as_arr)
        .ok_or(format!("missing {what}"))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or(format!("non-string entry in {what}"))
        })
        .collect()
}

fn usize_field(v: Option<&Json>, what: &str) -> Result<usize, String> {
    match v {
        Some(Json::Num(x)) if *x >= 0.0 && x.fract() == 0.0 => Ok(*x as usize),
        _ => Err(format!("missing or invalid {what}")),
    }
}

/// Parses a shard manifest.
///
/// # Errors
///
/// A description of the first syntax or schema violation.
pub fn parse_shard_manifest(text: &str) -> Result<ShardManifest, String> {
    let v = parse_json(text)?;
    if usize_field(v.get("format"), "format")? != SHARD_MANIFEST_FORMAT as usize {
        return Err("unsupported shard manifest format".into());
    }
    let str_field = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(format!("missing {key}"))
    };
    let grid = v
        .get("grid")
        .and_then(Json::as_arr)
        .ok_or("missing grid")?
        .iter()
        .map(|p| {
            p.as_arr()
                .ok_or("grid point is not an array".to_string())?
                .iter()
                .map(|x| match x {
                    Json::Num(f) => Ok(*f),
                    Json::Null => Ok(f64::NAN),
                    other => Err(format!("non-numeric grid value {other:?}")),
                })
                .collect::<Result<Vec<f64>, String>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    let m = ShardManifest {
        deck: str_field("deck")?,
        deck_hash: str_field("deck_hash")?,
        shards: usize_field(v.get("shards"), "shards")?,
        shard_index: usize_field(v.get("shard_index"), "shard_index")?,
        jobs_total: usize_field(v.get("jobs_total"), "jobs_total")?,
        param_labels: str_list(v.get("params"), "params")?,
        analysis_labels: str_list(v.get("analyses"), "analyses")?,
        grid,
        results: str_field("results")?,
    };
    if m.shards == 0 || m.shard_index >= m.shards {
        return Err(format!(
            "shard_index {} out of range for {} shards",
            m.shard_index, m.shards
        ));
    }
    Ok(m)
}

/// Merges a complete set of shards back into one index-ordered
/// [`SweepOutcome`], validating that all shards describe the same sweep
/// and that every job id in `0..jobs_total` arrives exactly once.
///
/// The shard *layouts* need not match — any combination whose records
/// cover the grid merges, so a 1-shard run and a 4-shard run reassemble
/// to identical outcomes.
///
/// # Errors
///
/// [`SweepError::BadInput`] on inconsistent manifests, duplicate jobs,
/// or incomplete coverage.
pub fn merge_shards(
    shards: &[(ShardManifest, Vec<JobRecord>)],
) -> Result<SweepOutcome, SweepError> {
    let bad = |msg: String| SweepError::BadInput(format!("merge: {msg}"));
    let (first, _) = shards
        .first()
        .ok_or_else(|| bad("no shards given".into()))?;
    for (m, _) in shards {
        if m.deck_hash != first.deck_hash {
            return Err(bad(format!(
                "shard '{}' ran a different deck/config (deck_hash mismatch)",
                m.results
            )));
        }
        if m.jobs_total != first.jobs_total
            || m.param_labels != first.param_labels
            || m.analysis_labels != first.analysis_labels
            || m.grid.len() != first.grid.len()
        {
            return Err(bad(format!(
                "shard '{}' disagrees on the sweep shape",
                m.results
            )));
        }
    }
    let n_analyses = first.analysis_labels.len();
    if first.grid.len() * n_analyses != first.jobs_total {
        return Err(bad("jobs_total does not match grid × analyses".into()));
    }

    let mut slots: Vec<Option<RunRecord>> = vec![None; first.jobs_total];
    for (m, records) in shards {
        for rec in records {
            if rec.job >= first.jobs_total {
                return Err(bad(format!("job id {} out of range", rec.job)));
            }
            if !shard_owns(rec.job, m.shards, m.shard_index) {
                return Err(bad(format!(
                    "job {} does not belong to shard {}/{}",
                    rec.job, m.shard_index, m.shards
                )));
            }
            let point = rec.job / n_analyses;
            let a = rec.job % n_analyses;
            if rec.point != point || rec.analysis_index != a {
                return Err(bad(format!("job {} has inconsistent indices", rec.job)));
            }
            if slots[rec.job].is_some() {
                return Err(bad(format!("job {} appears twice", rec.job)));
            }
            slots[rec.job] = Some(RunRecord {
                point,
                values: rec.values.clone(),
                analysis_index: a,
                analysis: rec.analysis.clone(),
                result: rec.result.clone(),
            });
        }
    }
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(id, s)| s.is_none().then_some(id))
        .collect();
    if !missing.is_empty() {
        return Err(bad(format!(
            "{} of {} jobs missing (ids {:?}{}) — run the missing shards first",
            missing.len(),
            first.jobs_total,
            &missing[..missing.len().min(8)],
            if missing.len() > 8 { ", ..." } else { "" },
        )));
    }

    Ok(SweepOutcome {
        param_labels: first.param_labels.clone(),
        grid: first.grid.clone(),
        analysis_labels: first.analysis_labels.clone(),
        runs: slots
            .into_iter()
            .map(|s| s.expect("coverage checked"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ScenarioResult;

    fn manifest(shards: usize, shard_index: usize) -> ShardManifest {
        ShardManifest {
            deck: "examples/decks/vco_sweep.ckt".into(),
            deck_hash: "deadbeef".into(),
            shards,
            shard_index,
            jobs_total: 4,
            param_labels: vec!["M1.control".into()],
            analysis_labels: vec!["shooting0".into(), "wampde0".into()],
            grid: vec![vec![1.2], vec![0.1 + 0.2]],
            results: format!("sweep_shard{shard_index}of{shards}.jsonl"),
        }
    }

    fn record(job: usize, m: &ShardManifest) -> JobRecord {
        let n = m.analysis_labels.len();
        JobRecord {
            job,
            point: job / n,
            analysis_index: job % n,
            analysis: m.analysis_labels[job % n].clone(),
            cached: false,
            values: m.grid[job / n].clone(),
            result: ScenarioResult {
                analysis: if job.is_multiple_of(n) {
                    "shooting"
                } else {
                    "wampde"
                },
                columns: vec!["t1".into()],
                rows: vec![vec![job as f64]],
                metrics: vec![("freq_hz".into(), 7.5e5 + job as f64)],
            },
        }
    }

    #[test]
    fn manifest_roundtrip_is_exact() {
        let m = manifest(2, 1);
        let back = parse_shard_manifest(&render_shard_manifest(&m)).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.grid[1][0].to_bits(), (0.1_f64 + 0.2).to_bits());
        assert_eq!(m.jobs_here(), vec![1, 3]);
    }

    #[test]
    fn merge_reassembles_any_layout() {
        // 2-shard layout vs. trivial 1-shard layout: same outcome.
        let two: Vec<(ShardManifest, Vec<JobRecord>)> = (0..2)
            .map(|k| {
                let m = manifest(2, k);
                let recs = m.jobs_here().iter().map(|&j| record(j, &m)).collect();
                (m, recs)
            })
            .collect();
        let one_manifest = manifest(1, 0);
        let one = vec![(
            one_manifest.clone(),
            (0..4).map(|j| record(j, &one_manifest)).collect::<Vec<_>>(),
        )];
        let a = merge_shards(&two).unwrap();
        let b = merge_shards(&one).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.runs.len(), 4);
        for (id, run) in a.runs.iter().enumerate() {
            assert_eq!(run.point, id / 2);
            assert_eq!(run.analysis_index, id % 2);
        }
    }

    #[test]
    fn merge_rejects_incomplete_or_inconsistent_sets() {
        let m0 = manifest(2, 0);
        let recs0: Vec<JobRecord> = m0.jobs_here().iter().map(|&j| record(j, &m0)).collect();
        // Missing shard 1.
        let err = merge_shards(&[(m0.clone(), recs0.clone())]).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        // Mismatched deck hash.
        let mut m1 = manifest(2, 1);
        let recs1: Vec<JobRecord> = m1.jobs_here().iter().map(|&j| record(j, &m1)).collect();
        m1.deck_hash = "0000".into();
        let err = merge_shards(&[(m0.clone(), recs0.clone()), (m1, recs1.clone())]).unwrap_err();
        assert!(err.to_string().contains("deck_hash"), "{err}");
        // Duplicate job (same shard twice).
        let err = merge_shards(&[(m0.clone(), recs0.clone()), (m0.clone(), recs0)]).unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
        // A record claiming a job its shard does not own.
        let stray = vec![record(1, &manifest(1, 0))];
        let err = merge_shards(&[(m0, stray)]).unwrap_err();
        assert!(err.to_string().contains("belong"), "{err}");
    }

    #[test]
    fn deck_hash_tracks_deck_and_analyses() {
        let base = circuitdae::parse_deck(
            "C1 tank 0 4.503n\nL1 tank 0 10u\nGN1 tank 0 5m 1.667m\n.shooting steps=128\n",
        )
        .unwrap();
        let other_steps = circuitdae::parse_deck(
            "C1 tank 0 4.503n\nL1 tank 0 10u\nGN1 tank 0 5m 1.667m\n.shooting steps=256\n",
        )
        .unwrap();
        let other_circuit = circuitdae::parse_deck(
            "C1 tank 0 4.6n\nL1 tank 0 10u\nGN1 tank 0 5m 1.667m\n.shooting steps=128\n",
        )
        .unwrap();
        assert_eq!(deck_hash(&base), deck_hash(&base));
        assert_ne!(deck_hash(&base), deck_hash(&other_steps));
        assert_ne!(deck_hash(&base), deck_hash(&other_circuit));
    }
}
