//! JSON-lines streaming of per-job sweep results.
//!
//! Long sweeps should be observable in flight: the executor emits one
//! [`JobRecord`] line the moment each job completes, in *completion*
//! order (nondeterministic on the wire — workers race), while the final
//! aggregation stays index-ordered and deterministic. The same records
//! are the transport between shards and `merge`: floats are rendered
//! with Rust's shortest-round-trip `Display`, which parses back to the
//! exact same bits, so a merged aggregate is byte-identical to a
//! single-process run.
//!
//! The crate is dependency-free, so this module carries a minimal JSON
//! reader ([`parse_json`]) sufficient for the records and shard
//! manifests it writes itself.

use crate::analysis::ScenarioResult;
use crate::cache::static_analysis;

/// One completed job, as streamed on a JSON-lines channel.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Global job id (`point * n_analyses + analysis_index`).
    pub job: usize,
    /// Grid point index.
    pub point: usize,
    /// Index of the analysis directive in the deck.
    pub analysis_index: usize,
    /// Unique analysis label, e.g. `wampde0`.
    pub analysis: String,
    /// Whether the result came from the on-disk cache.
    pub cached: bool,
    /// Swept parameter values at this grid point.
    pub values: Vec<f64>,
    /// The full analysis result (exact float transport).
    pub result: ScenarioResult,
}

/// Renders a finite float exactly (shortest round-trip), non-finite as
/// `null` (JSON has no NaN/inf; [`json_to_f64`] maps it back to NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// JSON string literal with the escapes the grammar requires.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64_array(vals: &[f64]) -> String {
    let words: Vec<String> = vals.iter().map(|&v| json_f64(v)).collect();
    format!("[{}]", words.join(","))
}

/// Renders one record as a single JSON line (no trailing newline).
pub fn render_record(rec: &JobRecord) -> String {
    let columns: Vec<String> = rec.result.columns.iter().map(|c| json_str(c)).collect();
    let metrics: Vec<String> = rec
        .result
        .metrics
        .iter()
        .map(|(n, v)| format!("[{},{}]", json_str(n), json_f64(*v)))
        .collect();
    let rows: Vec<String> = rec.result.rows.iter().map(|r| json_f64_array(r)).collect();
    format!(
        "{{\"job\":{},\"point\":{},\"analysis_index\":{},\"analysis\":{},\"kind\":{},\
         \"cached\":{},\"values\":{},\"columns\":[{}],\"metrics\":[{}],\"rows\":[{}]}}",
        rec.job,
        rec.point,
        rec.analysis_index,
        json_str(&rec.analysis),
        json_str(rec.result.analysis),
        rec.cached,
        json_f64_array(&rec.values),
        columns.join(","),
        metrics.join(","),
        rows.join(","),
    )
}

/// Parses one JSON line back into a [`JobRecord`].
///
/// # Errors
///
/// A description of the first syntax or schema violation.
pub fn parse_record(line: &str) -> Result<JobRecord, String> {
    let v = parse_json(line)?;
    let job = json_to_usize(v.get("job").ok_or("missing job")?)?;
    let point = json_to_usize(v.get("point").ok_or("missing point")?)?;
    let analysis_index = json_to_usize(v.get("analysis_index").ok_or("missing analysis_index")?)?;
    let analysis = v
        .get("analysis")
        .and_then(Json::as_str)
        .ok_or("missing analysis")?
        .to_string();
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .and_then(static_analysis)
        .ok_or("missing or unknown kind")?;
    let cached = match v.get("cached") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("missing cached".into()),
    };
    let values = json_to_f64_vec(v.get("values").ok_or("missing values")?)?;
    let columns = v
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or("missing columns")?
        .iter()
        .map(|c| c.as_str().map(str::to_string).ok_or("non-string column"))
        .collect::<Result<Vec<_>, _>>()?;
    let metrics = v
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or("missing metrics")?
        .iter()
        .map(|m| {
            let pair = m.as_arr().ok_or("metric is not a pair")?;
            match pair {
                [name, val] => Ok((
                    name.as_str().ok_or("non-string metric name")?.to_string(),
                    json_to_f64(val)?,
                )),
                _ => Err("metric is not a pair".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing rows")?
        .iter()
        .map(json_to_f64_vec)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(JobRecord {
        job,
        point,
        analysis_index,
        analysis,
        cached,
        values,
        result: ScenarioResult {
            analysis: kind,
            columns,
            rows,
            metrics,
        },
    })
}

/// A parsed JSON value. Minimal by design: just enough for the records
/// and manifests this workspace writes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always read as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Converts a number (or `null`, the NaN encoding) to `f64`.
fn json_to_f64(v: &Json) -> Result<f64, String> {
    match v {
        Json::Num(x) => Ok(*x),
        Json::Null => Ok(f64::NAN),
        other => Err(format!("expected number, got {other:?}")),
    }
}

fn json_to_usize(v: &Json) -> Result<usize, String> {
    match v {
        Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => Ok(*x as usize),
        other => Err(format!("expected non-negative integer, got {other:?}")),
    }
}

fn json_to_f64_vec(v: &Json) -> Result<Vec<f64>, String> {
    v.as_arr()
        .ok_or("expected array")?
        .iter()
        .map(json_to_f64)
        .collect()
}

/// Parses one complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// A description of the first syntax error, with byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (unescaped, ASCII or UTF-8)
            // run; str slicing keeps multi-byte characters intact.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("dangling escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not emitted by this
                            // workspace's writers; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number run");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> JobRecord {
        JobRecord {
            job: 5,
            point: 2,
            analysis_index: 1,
            analysis: "wampde1".into(),
            cached: true,
            values: vec![1.2, 0.1 + 0.2],
            result: ScenarioResult {
                analysis: "wampde",
                columns: vec!["t2".into(), "amp(v(\"tank\"))".into()],
                rows: vec![vec![0.0, 1.5e-13], vec![2e-7, -0.25]],
                metrics: vec![("omega_min_hz".into(), 7.49e5), ("steps".into(), 131.0)],
            },
        }
    }

    #[test]
    fn record_roundtrip_is_bit_exact() {
        let rec = sample_record();
        let line = render_record(&rec);
        assert!(!line.contains('\n'));
        let back = parse_record(&line).unwrap();
        assert_eq!(rec, back);
        for (a, b) in rec
            .result
            .rows
            .iter()
            .flatten()
            .zip(back.result.rows.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parser_handles_plain_json() {
        let v = parse_json(r#" {"a": [1, -2.5e3, true, null], "b": {"c": "x\ny"}} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\ny"
        );
        assert_eq!(
            json_to_f64(&v.get("a").unwrap().as_arr().unwrap()[1]).unwrap(),
            -2500.0
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "01x",
            "nul",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_ride_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert!(json_to_f64(&parse_json("null").unwrap()).unwrap().is_nan());
    }

    #[test]
    fn display_floats_roundtrip_exactly() {
        for &v in &[
            0.1_f64 + 0.2,
            1.0 / 3.0,
            -2.2250738585072014e-308,
            1.7976931348623157e308,
        ] {
            let back: f64 = format!("{v}").parse().unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }
}
