//! Fixed and LTE-adaptive step-size control.

use numkit::vecops::wrms_norm;

/// Step-size policy, shared by every stepping loop in the workspace.
///
/// The `0.0 = auto` fields resolve against the integration span with
/// **one** canonical rule (see [`StepPolicy::resolve`]); before this
/// crate each solver had its own fractions, so a deck tuned on one
/// analysis silently meant something different on another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepPolicy {
    /// Constant step (the paper's "N points per cycle" baseline mode).
    Fixed(f64),
    /// Predictor–corrector LTE control.
    Adaptive {
        /// Relative local-error tolerance.
        rtol: f64,
        /// Absolute local-error tolerance.
        atol: f64,
        /// Initial step (`0.0` = auto: span/1000).
        dt_init: f64,
        /// Smallest allowed step (`0.0` = auto: span·1e-12).
        dt_min: f64,
        /// Largest allowed step (`0.0` = auto: span/10).
        dt_max: f64,
    },
}

impl Default for StepPolicy {
    fn default() -> Self {
        StepPolicy::adaptive(1e-6, 1e-12)
    }
}

impl StepPolicy {
    /// An adaptive policy at the given tolerances with every step bound
    /// auto-resolved.
    pub fn adaptive(rtol: f64, atol: f64) -> Self {
        StepPolicy::Adaptive {
            rtol,
            atol,
            dt_init: 0.0,
            dt_min: 0.0,
            dt_max: 0.0,
        }
    }

    /// Resolves the policy against the integration span into a live
    /// [`StepController`]. `order` is the scheme's classical order
    /// ([`crate::Scheme::order`]), used in the error exponent.
    ///
    /// Auto-defaults (`0.0` fields): `dt_init = span/1000`,
    /// `dt_min = span·1e-12`, `dt_max = span/10`; `dt_init` is clamped
    /// into `[dt_min, dt_max]`.
    ///
    /// # Errors
    ///
    /// Returns a canonical message (callers wrap it in their own
    /// `BadInput` variants, so every solver rejects a bad step policy
    /// identically) when the fixed step is zero, negative, or NaN; when
    /// a tolerance is not positive; when a step bound is negative or
    /// NaN; or when `dt_min` exceeds `dt_max`.
    pub fn resolve(&self, span: f64, order: usize) -> Result<StepController, String> {
        let positive = |v: f64| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        let auto = |v: f64, what: &str| -> Result<bool, String> {
            if v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Less) || v.is_nan() {
                Err(format!("{what} must not be negative"))
            } else {
                Ok(!positive(v))
            }
        };
        match *self {
            StepPolicy::Fixed(dt) => {
                if !positive(dt) {
                    return Err("fixed step must be positive".into());
                }
                Ok(StepController {
                    adaptive: false,
                    rtol: 0.0,
                    atol: 0.0,
                    h: dt,
                    h_min: dt,
                    h_max: dt,
                    order,
                })
            }
            StepPolicy::Adaptive {
                rtol,
                atol,
                dt_init,
                dt_min,
                dt_max,
            } => {
                if !positive(rtol) {
                    return Err("rtol must be positive".into());
                }
                if !positive(atol) {
                    return Err("atol must be positive".into());
                }
                let h_min = if auto(dt_min, "dt_min")? {
                    span * 1e-12
                } else {
                    dt_min
                };
                let h_max = if auto(dt_max, "dt_max")? {
                    span / 10.0
                } else {
                    dt_max
                };
                if h_min > h_max {
                    return Err(format!("dt_min {h_min:e} exceeds dt_max {h_max:e}"));
                }
                let h = if auto(dt_init, "dt_init")? {
                    span / 1000.0
                } else {
                    dt_init
                }
                .clamp(h_min, h_max);
                Ok(StepController {
                    adaptive: true,
                    rtol,
                    atol,
                    h,
                    h_min,
                    h_max,
                    order,
                })
            }
        }
    }
}

/// Verdict of [`StepController::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepVerdict {
    /// LTE within tolerance (or fixed-step mode): commit the step.
    Accept,
    /// LTE too large: discard the step and retry at the shrunken size.
    Reject,
}

/// Live step-size controller: proposes attempt sizes, judges LTE
/// estimates, and rescales the working step with the standard
/// safety-factor law `h ← h·0.9·err^(−1/(order+1))`, growth clamped to
/// `[0.25, 2.5]` on accept and shrink to `[0.1, 0.9]` on reject.
#[derive(Debug, Clone, Copy)]
pub struct StepController {
    adaptive: bool,
    rtol: f64,
    atol: f64,
    h: f64,
    h_min: f64,
    h_max: f64,
    order: usize,
}

impl StepController {
    /// Whether LTE control is active (`false` for a fixed step).
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// Relative tolerance (0 in fixed mode).
    pub fn rtol(&self) -> f64 {
        self.rtol
    }

    /// Absolute tolerance (0 in fixed mode).
    pub fn atol(&self) -> f64 {
        self.atol
    }

    /// The current working step.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// The resolved minimum step.
    pub fn h_min(&self) -> f64 {
        self.h_min
    }

    /// The resolved maximum step.
    pub fn h_max(&self) -> f64 {
        self.h_max
    }

    /// The step to attempt from `t`: the working step clipped to the
    /// remaining span, with the final step *stretched* (by ≤ 1 %) to
    /// absorb the floating-point remainder — a trailing micro-step
    /// would make `C/h` dominate the step Jacobian and, in bordered
    /// envelope systems, render the phase/ω border numerically
    /// singular.
    pub fn propose(&self, t: f64, t_end: f64) -> f64 {
        let mut h_try = self.h.min(t_end - t);
        if t_end - (t + h_try) < 0.01 * h_try {
            h_try = t_end - t;
        }
        h_try
    }

    /// Predictor–corrector LTE estimate: the weighted RMS norm of
    /// `z_new − pred` against `z_new`, divided by 5 (the
    /// predictor–corrector difference over-estimates the LTE; 1/5 is
    /// the usual calibration). `≤ 1` means within tolerance.
    pub fn lte(&self, z_new: &[f64], pred: &[f64]) -> f64 {
        let diff: Vec<f64> = z_new.iter().zip(pred.iter()).map(|(a, b)| a - b).collect();
        wrms_norm(&diff, z_new, self.atol, self.rtol) / 5.0
    }

    /// Judges an attempted step of size `h_try` with LTE estimate
    /// `err`, updating the working step. Fixed mode always accepts.
    /// A non-finite `err` is treated as a hard reject (maximum shrink).
    pub fn evaluate(&mut self, h_try: f64, err: f64) -> StepVerdict {
        if !self.adaptive {
            self.record(StepVerdict::Accept, h_try, err, "fixed");
            return StepVerdict::Accept;
        }
        let exponent = -1.0 / (self.order as f64 + 1.0);
        if err <= 1.0 {
            let grow = 0.9 * err.max(1e-10).powf(exponent);
            self.h = (h_try * grow.clamp(0.25, 2.5)).clamp(self.h_min, self.h_max);
            self.record(StepVerdict::Accept, h_try, err, "lte");
            StepVerdict::Accept
        } else {
            let shrink = if err.is_finite() {
                (0.9 * err.powf(exponent)).clamp(0.1, 0.9)
            } else {
                0.1
            };
            self.h = (h_try * shrink).max(self.h_min);
            self.record(StepVerdict::Reject, h_try, err, "lte");
            StepVerdict::Reject
        }
    }

    /// Emit the accept/reject convergence-trace row and counters for an
    /// attempted step. Inert unless an `obskit` recorder is installed.
    fn record(&self, verdict: StepVerdict, h_try: f64, err: f64, law: &'static str) {
        if !obskit::enabled() {
            return;
        }
        match verdict {
            StepVerdict::Accept => {
                obskit::counter_add("step.accepted", 1);
                obskit::observe("step.h", h_try);
                obskit::point(
                    "step.accept",
                    &[
                        ("h", obskit::AttrValue::F64(h_try)),
                        ("lte", obskit::AttrValue::F64(err)),
                        ("law", obskit::AttrValue::Str(law)),
                    ],
                );
            }
            StepVerdict::Reject => {
                obskit::counter_add("step.rejected", 1);
                obskit::counter_add("step.rejected.lte", 1);
                obskit::point(
                    "step.reject",
                    &[
                        ("h", obskit::AttrValue::F64(h_try)),
                        ("lte", obskit::AttrValue::F64(err)),
                        ("reason", obskit::AttrValue::Str("lte")),
                    ],
                );
            }
        }
    }

    /// Shrinks the working step after a nonlinear-solver failure
    /// (quarter the attempt, floored at the minimum). Call
    /// [`StepController::at_min`] first: at the floor there is nothing
    /// left to try and the solver's own error should propagate.
    pub fn reject_failure(&mut self, h_try: f64) {
        self.h = (h_try * 0.25).max(self.h_min);
        if obskit::enabled() {
            obskit::counter_add("step.rejected", 1);
            obskit::counter_add("step.rejected.newton", 1);
            obskit::point(
                "step.reject",
                &[
                    ("h", obskit::AttrValue::F64(h_try)),
                    ("reason", obskit::AttrValue::Str("newton")),
                ],
            );
        }
    }

    /// Whether an attempt size is already at the minimum step (within
    /// roundoff), i.e. no further shrink is possible.
    pub fn at_min(&self, h_try: f64) -> bool {
        h_try <= self.h_min * 1.0000001
    }

    /// Whether adaptive control has been driven to the minimum step —
    /// the error tolerance cannot be met and stepping should stop with
    /// a step-too-small error.
    pub fn underflowed(&self) -> bool {
        self.adaptive && self.h <= self.h_min * 1.0000001
    }

    /// Hard cap on total attempts for a run over `span`: prevents
    /// runaway loops under absurd tolerances while never tripping on a
    /// legitimate run (at least twice the steps a minimum-step march
    /// would need, floored at 1024, capped at 2·10⁸).
    pub fn attempt_budget(&self, span: f64) -> usize {
        200_000_000usize.min(
            ((span / self.h_min).ceil() as usize)
                .saturating_mul(2)
                .max(1024),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_resolution_and_rejection_of_bad_steps() {
        let c = StepPolicy::Fixed(0.1).resolve(1.0, 2).unwrap();
        assert!(!c.adaptive());
        assert_eq!(c.h(), 0.1);
        for bad in [0.0, -1.0, f64::NAN] {
            let err = StepPolicy::Fixed(bad).resolve(1.0, 2).unwrap_err();
            assert_eq!(err, "fixed step must be positive");
        }
    }

    #[test]
    fn adaptive_auto_defaults() {
        let c = StepPolicy::adaptive(1e-6, 1e-12).resolve(2.0, 2).unwrap();
        assert!(c.adaptive());
        assert_eq!(c.h(), 2.0 / 1000.0);
        assert_eq!(c.h_min(), 2.0 * 1e-12);
        assert_eq!(c.h_max(), 2.0 / 10.0);
        // Explicit bounds win and clamp dt_init.
        let c = StepPolicy::Adaptive {
            rtol: 1e-6,
            atol: 1e-12,
            dt_init: 1.0,
            dt_min: 1e-3,
            dt_max: 0.5,
        }
        .resolve(2.0, 2)
        .unwrap();
        assert_eq!(c.h(), 0.5);
    }

    #[test]
    fn adaptive_rejects_bad_tolerances_and_bounds() {
        assert!(StepPolicy::adaptive(0.0, 1e-12)
            .resolve(1.0, 2)
            .unwrap_err()
            .contains("rtol"));
        assert!(StepPolicy::adaptive(1e-6, -1.0)
            .resolve(1.0, 2)
            .unwrap_err()
            .contains("atol"));
        let err = StepPolicy::Adaptive {
            rtol: 1e-6,
            atol: 1e-12,
            dt_init: 0.0,
            dt_min: 0.5,
            dt_max: 0.1,
        }
        .resolve(1.0, 2)
        .unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        let err = StepPolicy::Adaptive {
            rtol: 1e-6,
            atol: 1e-12,
            dt_init: -1.0,
            dt_min: 0.0,
            dt_max: 0.0,
        }
        .resolve(1.0, 2)
        .unwrap_err();
        assert!(err.contains("dt_init"), "{err}");
    }

    #[test]
    fn final_step_stretch() {
        let c = StepPolicy::Fixed(0.1).resolve(1.0005, 2).unwrap();
        // Remainder 0.5 % of h: stretched into the final step.
        let h = c.propose(0.9005000000000001, 1.0005);
        assert!((h - 0.09999999999999987).abs() < 1e-12 || h <= 0.101);
        assert!(c.propose(0.9005, 1.0005) <= 0.101);
        // A large remainder is not stretched.
        assert_eq!(c.propose(0.5, 1.0005), 0.1);
    }

    #[test]
    fn accept_grows_reject_shrinks_within_bounds() {
        let mut c = StepPolicy::adaptive(1e-6, 1e-12).resolve(1.0, 2).unwrap();
        let h0 = c.h();
        assert_eq!(c.evaluate(h0, 1e-4), StepVerdict::Accept);
        assert!(c.h() > h0 && c.h() <= c.h_max());
        let h1 = c.h();
        assert_eq!(c.evaluate(h1, 50.0), StepVerdict::Reject);
        assert!(c.h() < h1 && c.h() >= c.h_min());
        assert_eq!(c.evaluate(c.h(), f64::INFINITY), StepVerdict::Reject);
        assert!(c.h() >= c.h_min());
    }

    #[test]
    fn failure_path_and_budget() {
        let mut c = StepPolicy::adaptive(1e-6, 1e-12).resolve(1.0, 1).unwrap();
        let h0 = c.h();
        assert!(!c.at_min(h0));
        c.reject_failure(h0);
        assert!((c.h() - h0 * 0.25).abs() < 1e-18);
        assert!(!c.underflowed());
        let fixed = StepPolicy::Fixed(0.25).resolve(1.0, 1).unwrap();
        assert!(fixed.at_min(0.25)); // fixed mode cannot shrink
        assert_eq!(fixed.attempt_budget(1.0), 1024);
    }
}
