//! Accepted-point history: the polynomial predictor ring.

/// One accepted time point.
#[derive(Debug, Clone)]
pub struct HistoryPoint {
    /// Time of acceptance.
    pub t: f64,
    /// The solver's full unknown vector at `t` (may carry extra
    /// unknowns beyond the state, e.g. the WaMPDE's `ω`).
    pub z: Vec<f64>,
    /// The charge vector `q` at `t`, consumed by
    /// [`crate::Scheme::step_coeffs`]. Its length may differ from
    /// `z`'s (bordered systems append unknowns that carry no charge).
    pub q: Vec<f64>,
}

/// Ring of the most recent accepted points (newest last), backing both
/// the Newton predictor and the predictor–corrector LTE estimate.
///
/// The predictor extrapolates `z` polynomially: quadratic through three
/// points when available — one order above BDF2, so the
/// predictor–corrector difference estimates the corrector's LTE —
/// linear through two, `None` before that (first step: no estimate,
/// accept unconditionally).
#[derive(Debug, Clone)]
pub struct History {
    entries: Vec<HistoryPoint>,
    cap: usize,
}

impl History {
    /// An empty history keeping at most `cap` points (the stepping
    /// loops use 3: enough for the quadratic predictor and BDF2).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 2, "history must hold at least two points");
        History {
            entries: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Records an accepted point, evicting the oldest beyond `cap`.
    pub fn push(&mut self, t: f64, z: Vec<f64>, q: Vec<f64>) {
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push(HistoryPoint { t, z, q });
    }

    /// Number of points held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no point has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The newest accepted point.
    pub fn latest(&self) -> Option<&HistoryPoint> {
        self.entries.last()
    }

    /// The point before the newest (BDF2's second history point).
    pub fn prev(&self) -> Option<&HistoryPoint> {
        self.entries.len().checked_sub(2).map(|i| &self.entries[i])
    }

    /// Polynomial extrapolation of `z` to time `t`: `None` with fewer
    /// than two points, linear with two, quadratic (Lagrange) with
    /// three.
    pub fn predict(&self, t: f64) -> Option<Vec<f64>> {
        match self.entries.len() {
            0 | 1 => None,
            2 => {
                let a = &self.entries[0];
                let b = &self.entries[1];
                let w = (t - a.t) / (b.t - a.t);
                Some(
                    a.z.iter()
                        .zip(b.z.iter())
                        .map(|(p, q)| p * (1.0 - w) + q * w)
                        .collect(),
                )
            }
            _ => {
                let n = self.entries.len();
                let a = &self.entries[n - 3];
                let b = &self.entries[n - 2];
                let c = &self.entries[n - 1];
                let la = (t - b.t) * (t - c.t) / ((a.t - b.t) * (a.t - c.t));
                let lb = (t - a.t) * (t - c.t) / ((b.t - a.t) * (b.t - c.t));
                let lc = (t - a.t) * (t - b.t) / ((c.t - a.t) * (c.t - b.t));
                Some(
                    (0..a.z.len())
                        .map(|i| a.z[i] * la + b.z[i] * lb + c.z[i] * lc)
                        .collect(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_orders() {
        let mut h = History::new(3);
        assert!(h.predict(1.0).is_none());
        h.push(0.0, vec![0.0], vec![0.0]);
        assert!(h.predict(1.0).is_none());
        // Linear through two points reproduces a line exactly.
        h.push(1.0, vec![2.0], vec![0.0]);
        assert!((h.predict(2.0).unwrap()[0] - 4.0).abs() < 1e-14);
        // Quadratic through three reproduces t^2 exactly.
        let mut h = History::new(3);
        for t in [0.0, 0.5, 1.5] {
            h.push(t, vec![t * t], vec![0.0]);
        }
        assert!((h.predict(2.0).unwrap()[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut h = History::new(3);
        for t in 0..5 {
            h.push(t as f64, vec![t as f64], vec![]);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.latest().unwrap().t, 4.0);
        assert_eq!(h.prev().unwrap().t, 3.0);
    }
}
