//! Shared adaptive time-integration engine.
//!
//! Every time-stepping loop in this workspace faces the same three
//! problems: pick an implicit scheme and its (variable-step)
//! coefficients, predict the next state from accepted history, and
//! decide — from a local-truncation-error estimate — whether to accept
//! the step and how large the next one should be. Before this crate
//! those answers were copy-pasted three times (`transim`'s transient
//! loop, the MPDE envelope, the WaMPDE envelope) with subtly different
//! defaults and final-step handling; `timekit` owns them once, exactly
//! as `linsolve` owns the inner linear solves.
//!
//! The pieces:
//!
//! * [`Scheme`] — the scheme table (Backward Euler / Trapezoidal /
//!   BDF2) with order, error constants, deck-facing names, and the
//!   step-residual coefficients `a0h`, `θ`, and the history term
//!   ([`Scheme::step_coeffs`]); uniform cyclic stencils for periodic
//!   boundary problems ([`Scheme::cyclic_stencil`]).
//! * [`History`] — the ring of accepted points backing both the Newton
//!   predictor and the predictor–corrector LTE estimate
//!   ([`History::predict`]).
//! * [`StepPolicy`] / [`StepController`] — fixed or LTE-adaptive step
//!   selection with one canonical `dt_init`/`dt_min`/`dt_max`
//!   auto-defaulting rule, the ≤1 % final-step stretch, and the
//!   safety-factor accept/reject law shared by every solver.
//!
//! A caller's loop reads:
//!
//! ```
//! use timekit::{History, Scheme, StepPolicy};
//!
//! # fn main() -> Result<(), String> {
//! let scheme = Scheme::Trapezoidal;
//! let policy = StepPolicy::default(); // adaptive, auto-resolved
//! let mut ctl = policy.resolve(1.0, scheme.order())?;
//! let mut hist = History::new(3);
//! hist.push(0.0, vec![1.0], vec![1.0]);
//! let (mut t, t_end) = (0.0, 1.0);
//! while t < t_end {
//!     let h_try = ctl.propose(t, t_end);
//!     // ... build the step system from scheme.step_coeffs(...),
//!     //     solve it, estimate the LTE, call ctl.accept(...) ...
//! #   t = t_end;
//! }
//! # Ok(())
//! # }
//! ```

pub mod controller;
pub mod history;
pub mod scheme;

pub use controller::{StepController, StepPolicy, StepVerdict};
pub use history::{History, HistoryPoint};
pub use scheme::{Scheme, StepCoeffs};
