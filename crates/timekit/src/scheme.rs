//! The implicit-scheme table and per-step coefficients.

use crate::history::History;

/// Implicit integration scheme along a (slow or ordinary) time axis.
///
/// All three schemes fit one step-residual shape: with `q` the charge
/// term, `g` the instantaneous term (`f − b` for a transient,
/// `ω·D·q + f − b` for an envelope), and `h` the step,
///
/// ```text
/// r(x) = a0h·q(x) + qlin + θ·g(x, t_new) + (1 − θ)·g(x_prev, t_prev),
/// ```
///
/// where `a0h` multiplies the new charge, `qlin` is the linear
/// combination of *historical* charges written by
/// [`Scheme::step_coeffs`], and `θ` weights the instantaneous term at
/// the new time. The Jacobian of every such step is `a0h·C + θ·G` (plus
/// whatever the instantaneous operator contributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// First order, L-stable, strongly damping. The safe choice for
    /// stiff dynamics and for envelope systems with multiplier-like
    /// unknowns.
    BackwardEuler,
    /// Second order, A-stable, no numerical damping — the standard
    /// transient choice for oscillators (SPICE default). Averages the
    /// instantaneous terms (`θ = ½`), which can ring on index-2-like
    /// multipliers such as the WaMPDE's `ω(t2)`.
    #[default]
    Trapezoidal,
    /// Second order, L-stable two-step BDF with variable-step
    /// coefficients; self-starts with one Backward Euler step. Fully
    /// implicit (`θ = 1`), so it is clean on multiplier unknowns.
    Bdf2,
}

/// The per-step scalar coefficients returned by [`Scheme::step_coeffs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCoeffs {
    /// Coefficient on the new charge `q(x_new)` (the `a0/h` of the
    /// scheme); the step Jacobian is `a0h·C + θ·G`.
    pub a0h: f64,
    /// Weight of the instantaneous term at the new time; `1 − θ` weights
    /// the previous instantaneous term (zero for the fully implicit
    /// schemes).
    pub theta: f64,
}

impl Scheme {
    /// Classical order of accuracy (used by the step controller's
    /// error exponent `−1/(order + 1)`).
    pub fn order(&self) -> usize {
        match self {
            Scheme::BackwardEuler => 1,
            Scheme::Trapezoidal | Scheme::Bdf2 => 2,
        }
    }

    /// Principal local-error constant of the uniform-step scheme: the
    /// LTE is `C·h^(order+1)·x^(order+1) + O(h^(order+2))`.
    pub fn error_constant(&self) -> f64 {
        match self {
            Scheme::BackwardEuler => 0.5,
            Scheme::Trapezoidal => -1.0 / 12.0,
            Scheme::Bdf2 => -2.0 / 9.0,
        }
    }

    /// Parses a deck/CLI scheme name: `be` (or `backward-euler`),
    /// `trap` (or `trapezoidal`), `bdf2`.
    pub fn parse(token: &str) -> Option<Self> {
        match token.to_ascii_lowercase().as_str() {
            "be" | "backward-euler" | "backwardeuler" => Some(Scheme::BackwardEuler),
            "trap" | "trapezoidal" => Some(Scheme::Trapezoidal),
            "bdf2" => Some(Scheme::Bdf2),
            _ => None,
        }
    }

    /// Short scheme name for deck directives, CLI flags, and artifact
    /// records.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::BackwardEuler => "be",
            Scheme::Trapezoidal => "trap",
            Scheme::Bdf2 => "bdf2",
        }
    }

    /// The scheme table, in deck-name order.
    pub fn all() -> &'static [Scheme] {
        &[Scheme::BackwardEuler, Scheme::Trapezoidal, Scheme::Bdf2]
    }

    /// Computes the step coefficients for a step of size `h` from the
    /// newest accepted point, writing the charge-history term
    /// `qlin = Σᵢ aᵢ·q_histᵢ / h` into `qlin` (resized to match).
    ///
    /// BDF2 uses the true variable-step coefficients from the gap
    /// between the two newest history points and self-starts with one
    /// Backward Euler step while only one point exists.
    ///
    /// # Panics
    ///
    /// Panics when the history is empty.
    pub fn step_coeffs(&self, h: f64, hist: &History, qlin: &mut Vec<f64>) -> StepCoeffs {
        let latest = hist.latest().expect("step_coeffs needs history");
        qlin.resize(latest.q.len(), 0.0);
        match self {
            Scheme::BackwardEuler | Scheme::Trapezoidal => {
                for (o, qv) in qlin.iter_mut().zip(&latest.q) {
                    *o = -qv / h;
                }
                let theta = if *self == Scheme::Trapezoidal {
                    0.5
                } else {
                    1.0
                };
                StepCoeffs {
                    a0h: 1.0 / h,
                    theta,
                }
            }
            Scheme::Bdf2 => match hist.prev() {
                // Self-start with one Backward Euler step.
                None => {
                    for (o, qv) in qlin.iter_mut().zip(&latest.q) {
                        *o = -qv / h;
                    }
                    StepCoeffs {
                        a0h: 1.0 / h,
                        theta: 1.0,
                    }
                }
                Some(prev) => {
                    let h_prev = latest.t - prev.t;
                    let rho = h / h_prev;
                    let a0 = (1.0 + 2.0 * rho) / (1.0 + rho);
                    let a1 = -(1.0 + rho);
                    let a2 = rho * rho / (1.0 + rho);
                    for (i, o) in qlin.iter_mut().enumerate() {
                        *o = (a1 * latest.q[i] + a2 * prev.q[i]) / h;
                    }
                    StepCoeffs {
                        a0h: a0 / h,
                        theta: 1.0,
                    }
                }
            },
        }
    }

    /// Uniform-grid cyclic difference stencil for periodic boundary
    /// problems: coefficients `(c0, c1, c2)` of `q_m`, `q_{m−1}`,
    /// `q_{m−2}` (to be divided by `h`) and the instantaneous weight
    /// `θ`. Used by the WaMPDE quasiperiodic solver, where every slice
    /// has both neighbours and no self-start is needed.
    pub fn cyclic_stencil(&self) -> (f64, f64, f64, f64) {
        match self {
            Scheme::BackwardEuler => (1.0, -1.0, 0.0, 1.0),
            Scheme::Trapezoidal => (1.0, -1.0, 0.0, 0.5),
            Scheme::Bdf2 => (1.5, -2.0, 0.5, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_consistent() {
        for &s in Scheme::all() {
            assert!(s.order() >= 1 && s.order() <= 2);
            assert!(s.error_constant().abs() > 0.0);
            assert_eq!(Scheme::parse(s.label()), Some(s));
        }
        assert_eq!(Scheme::parse("Trapezoidal"), Some(Scheme::Trapezoidal));
        assert_eq!(Scheme::parse("backward-euler"), Some(Scheme::BackwardEuler));
        assert_eq!(Scheme::parse("rk4"), None);
        assert_eq!(Scheme::default(), Scheme::Trapezoidal);
    }

    #[test]
    fn be_and_trap_coeffs() {
        let mut hist = History::new(3);
        hist.push(0.0, vec![1.0], vec![2.0]);
        let mut qlin = Vec::new();
        let c = Scheme::BackwardEuler.step_coeffs(0.5, &hist, &mut qlin);
        assert_eq!(c.a0h, 2.0);
        assert_eq!(c.theta, 1.0);
        assert_eq!(qlin, vec![-4.0]); // -q_prev/h
        let c = Scheme::Trapezoidal.step_coeffs(0.5, &hist, &mut qlin);
        assert_eq!(c.theta, 0.5);
        assert_eq!(qlin, vec![-4.0]);
    }

    #[test]
    fn bdf2_self_starts_then_uses_variable_coeffs() {
        let mut hist = History::new(3);
        hist.push(0.0, vec![1.0], vec![1.0]);
        let mut qlin = Vec::new();
        let c = Scheme::Bdf2.step_coeffs(0.1, &hist, &mut qlin);
        assert_eq!(c.a0h, 10.0); // BE start
        hist.push(0.1, vec![1.0], vec![2.0]);
        let c = Scheme::Bdf2.step_coeffs(0.1, &hist, &mut qlin);
        // Uniform step: a0 = 3/2, a1 = -2, a2 = 1/2.
        assert!((c.a0h - 15.0).abs() < 1e-12);
        assert!((qlin[0] - (-2.0 * 2.0 + 0.5 * 1.0) / 0.1).abs() < 1e-12);
        assert_eq!(c.theta, 1.0);
    }

    #[test]
    fn cyclic_stencils_sum_to_zero() {
        // A constant q must annihilate under every cyclic stencil.
        for &s in Scheme::all() {
            let (c0, c1, c2, theta) = s.cyclic_stencil();
            assert!((c0 + c1 + c2).abs() < 1e-15);
            assert!(theta > 0.0 && theta <= 1.0);
        }
    }
}
