//! Property tests of the step controller: whatever sequence of LTE
//! verdicts and solver failures it sees, the working step must stay
//! inside the resolved `[dt_min, dt_max]` bounds, rejections must
//! shrink the step, and an accepted step implies the LTE estimate was
//! within tolerance.

use proptest::prelude::*;
use timekit::{StepPolicy, StepVerdict};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drive a resolved adaptive controller with a random mix of LTE
    /// estimates and solver failures, checking the invariants after
    /// every transition.
    #[test]
    fn controller_invariants_hold_under_random_driving(
        span_exp in -9.0f64..3.0,
        rtol_exp in -10.0f64..-2.0,
        errs in prop::collection::vec(0.0f64..40.0, 1..60),
        fail_every in 2usize..7,
    ) {
        let span = 10.0f64.powf(span_exp);
        let policy = StepPolicy::adaptive(10.0f64.powf(rtol_exp), 1e-12);
        let mut ctl = policy.resolve(span, 2).unwrap();
        prop_assert!(ctl.h_min() > 0.0 && ctl.h_min() <= ctl.h_max());
        prop_assert!(ctl.h() >= ctl.h_min() && ctl.h() <= ctl.h_max());

        for (i, &err) in errs.iter().enumerate() {
            let h_try = ctl.h();
            if i % fail_every == 0 {
                // A solver failure quarters the step (floored at dt_min).
                if !ctl.at_min(h_try) {
                    ctl.reject_failure(h_try);
                    prop_assert!(ctl.h() < h_try || ctl.at_min(ctl.h()));
                }
            } else {
                let verdict = ctl.evaluate(h_try, err);
                match verdict {
                    StepVerdict::Accept => {
                        // Accepted steps had LTE within tolerance.
                        prop_assert!(err <= 1.0, "accepted err {err}");
                    }
                    StepVerdict::Reject => {
                        // Rejection shrinks the working step (unless
                        // already pinned at the floor).
                        prop_assert!(err > 1.0, "rejected err {err}");
                        prop_assert!(
                            ctl.h() < h_try || ctl.at_min(h_try),
                            "reject did not shrink: {} -> {}",
                            h_try,
                            ctl.h()
                        );
                    }
                }
            }
            // The bound invariant, always.
            prop_assert!(
                ctl.h() >= ctl.h_min() && ctl.h() <= ctl.h_max(),
                "h {} outside [{}, {}]",
                ctl.h(),
                ctl.h_min(),
                ctl.h_max()
            );
        }
    }

    /// The LTE estimate is exactly zero for a perfect prediction and
    /// within tolerance (≤ 1) when the predictor–corrector difference
    /// is below the weighted tolerance band.
    #[test]
    fn lte_estimate_is_scaled_wrms(
        vals in prop::collection::vec(-5.0f64..5.0, 1..12),
        rtol_exp in -8.0f64..-3.0,
    ) {
        let rtol = 10.0f64.powf(rtol_exp);
        let ctl = StepPolicy::adaptive(rtol, 1e-12).resolve(1.0, 2).unwrap();
        prop_assert_eq!(ctl.lte(&vals, &vals), 0.0);
        // Perturb each entry by a tenth of its own tolerance band: the
        // predictor–corrector estimate (which divides by 5) must accept.
        let pred: Vec<f64> = vals
            .iter()
            .map(|v| v + 0.1 * (1e-12 + rtol * v.abs()))
            .collect();
        prop_assert!(ctl.lte(&vals, &pred) <= 1.0);
    }

    /// Proposals never overshoot the interval end and stretch (≤ 1 %)
    /// rather than leave a trailing micro-step.
    #[test]
    fn propose_clips_and_stretches(
        span_exp in -6.0f64..2.0,
        frac in 0.0f64..1.0,
    ) {
        let span = 10.0f64.powf(span_exp);
        let ctl = StepPolicy::adaptive(1e-6, 1e-12).resolve(span, 2).unwrap();
        let t = frac * span;
        let h = ctl.propose(t, span);
        prop_assert!(h > 0.0 || t >= span);
        // Never overshoots...
        prop_assert!(t + h <= span * (1.0 + 1e-12));
        // ...and never leaves a remainder smaller than 1 % of the step.
        let remainder = span - (t + h);
        prop_assert!(
            remainder <= 0.0 || remainder >= 0.01 * h,
            "micro-remainder {remainder:e} after step {h:e}"
        );
    }
}
