//! DC operating-point analysis with gmin continuation.

use crate::error::TransimError;
use crate::newton::{map_newton_err, NewtonOptions, NonlinearSystem};
use circuitdae::Dae;
use newtonkit::NewtonEngine;
use numkit::DMat;

/// Wraps a DAE as the static system `f(x) + gmin·x − b(0) = 0`.
struct DcSystem<'a, D: Dae + ?Sized> {
    dae: &'a D,
    gmin: f64,
    b0: Vec<f64>,
}

impl<D: Dae + ?Sized> NonlinearSystem for DcSystem<'_, D> {
    fn dim(&self) -> usize {
        self.dae.dim()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        self.dae.eval_f(x, out);
        for i in 0..out.len() {
            out[i] += self.gmin * x[i] - self.b0[i];
        }
    }

    fn jacobian(&self, x: &[f64], out: &mut DMat) {
        self.dae.jac_f(x, out);
        for i in 0..self.dim() {
            out[(i, i)] += self.gmin;
        }
    }

    fn jacobian_triplets(&self, x: &[f64], out: &mut sparsekit::Triplets) -> bool {
        let lease = linsolve::CoreBudget::lease_ambient();
        self.dae.jac_f_triplets_threads(x, out, lease.threads());
        drop(lease);
        for i in 0..self.dim() {
            out.push(i, i, self.gmin);
        }
        true
    }
}

/// Computes a DC operating point: `f(x) = b(0)`.
///
/// Uses gmin continuation — a shunt conductance `gmin·x` is added to every
/// equation and swept from `1e-2` down to `0` in decades, each stage warm-
/// starting the next. This regularises the singular `G` of ideal LC
/// oscillators (whose DC solution is the unstable equilibrium) and helps
/// strongly nonlinear circuits converge from the zero vector.
///
/// # Errors
///
/// Propagates the final stage's Newton failure.
pub fn dc_operating_point<D: Dae + ?Sized>(
    dae: &D,
    opts: &NewtonOptions,
) -> Result<Vec<f64>, TransimError> {
    dc_operating_point_from(dae, &vec![0.0; dae.dim()], opts)
}

/// [`dc_operating_point`] seeded from `guess` instead of the zero
/// vector — the continuation warm start used by batched sweeps, where a
/// neighbouring grid point's operating point is already in hand. The
/// same full gmin ladder still runs, so a bad guess degrades gracefully
/// rather than diverging.
///
/// # Errors
///
/// Propagates the final stage's Newton failure, or
/// [`TransimError::BadInput`] when `guess.len() != dae.dim()`.
pub fn dc_operating_point_from<D: Dae + ?Sized>(
    dae: &D,
    guess: &[f64],
    opts: &NewtonOptions,
) -> Result<Vec<f64>, TransimError> {
    let n = dae.dim();
    if guess.len() != n {
        return Err(TransimError::BadInput(format!(
            "DC warm-start guess has {} entries, dae has dim {n}",
            guess.len()
        )));
    }
    let mut b0 = vec![0.0; n];
    dae.eval_b(0.0, &mut b0);
    let mut x = guess.to_vec();

    // Continuation ladder: each gmin stage may fail without aborting; only
    // the last (gmin = 0, or smallest working gmin) must succeed. One
    // engine spans the whole ladder — every stage shares the Jacobian
    // pattern (the gmin shunt only shifts the diagonal), so all stages
    // after the first reuse the symbolic analysis on sparse backends.
    let mut ladder: Vec<f64> = (0..=10).map(|k| 1e-2 / 10f64.powi(k)).collect();
    ladder.push(0.0);
    let mut engine = NewtonEngine::new();

    let mut last_err = None;
    for &gmin in &ladder {
        let sys = DcSystem {
            dae,
            gmin,
            b0: b0.clone(),
        };
        let mut trial = x.clone();
        match engine.solve(&sys, &mut trial, opts) {
            Ok(_) => {
                x = trial;
                last_err = None;
            }
            Err(e) => {
                last_err = Some(map_newton_err(e));
            }
        }
    }
    match last_err {
        None => Ok(x),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::{circuits, Circuit, Device, Waveform};

    #[test]
    fn resistive_divider() {
        // 10V source -> 1k -> node -> 1k -> gnd: node sits at 5V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Device::voltage_source(a, Circuit::GND, Waveform::Dc(10.0)));
        ckt.add(Device::resistor(a, b, 1e3));
        ckt.add(Device::resistor(b, Circuit::GND, 1e3));
        let dae = ckt.build().unwrap();
        let x = dc_operating_point(&dae, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 10.0).abs() < 1e-6);
        assert!((x[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn lc_vco_equilibrium_is_origin() {
        let dae = circuits::lc_vco();
        let x = dc_operating_point(&dae, &NewtonOptions::default()).unwrap();
        // The (unstable) DC equilibrium of the oscillator is v=0, iL=0.
        assert!(x.iter().all(|v| v.abs() < 1e-6), "{x:?}");
    }

    #[test]
    fn mems_vco_dc_plate_position() {
        let cfg = circuits::MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let x = dc_operating_point(&dae, &NewtonOptions::default()).unwrap();
        let p = circuits::mems_vco_params(cfg);
        let want_y = p.static_displacement(1.5);
        assert!((x[circuits::idx::MEMS_Y] - want_y).abs() < 1e-6, "{x:?}");
        assert!(x[circuits::idx::MEMS_U].abs() < 1e-9);
    }

    #[test]
    fn nonlinear_diode_like_circuit() {
        // Current source into tanh conductor: solve −isat·tanh(v/vt)+v·g = I.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Device::current_source(Circuit::GND, a, Waveform::Dc(1e-3)));
        ckt.add(Device::tanh_conductor(a, Circuit::GND, -2e-3, 0.5, 1e-3));
        let dae = ckt.build().unwrap();
        let x = dc_operating_point(&dae, &NewtonOptions::default()).unwrap();
        // Residual check.
        let mut f = vec![0.0];
        dae.eval_f(&x, &mut f);
        assert!((f[0] - 1e-3).abs() < 1e-9);
    }
}
