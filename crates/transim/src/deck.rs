//! Deck adapter: runs a [`circuitdae::TranSpec`] directive.

use crate::dcop::{dc_operating_point, dc_operating_point_from};
use crate::error::TransimError;
use crate::integrate::{run_transient, StepControl, TransientOptions, TransientResult};
use crate::newton::NewtonOptions;
use circuitdae::{Dae, TranSpec};

/// Runs a `.tran` directive: DC operating point, then transient
/// integration to `t_stop` with the spec's scheme (fixed `dt` when the
/// spec gives one, LTE-adaptive at `rtol`/`atol` within
/// `dt_min`/`dt_max` otherwise).
///
/// # Errors
///
/// [`TransimError`] from the DC solve or the integration.
pub fn run_tran_spec<D: Dae + ?Sized>(
    dae: &D,
    spec: &TranSpec,
) -> Result<TransientResult, TransimError> {
    run_tran_spec_warm(dae, spec, None).map(|(res, _)| res)
}

/// [`run_tran_spec`] with a continuation warm start: `warm` (a
/// neighbouring grid point's converged DC operating point) seeds the
/// gmin ladder instead of the zero vector. Also returns this run's DC
/// operating point so the caller can chain it into the next point.
///
/// The gmin continuation runs in full either way, so a warm start can
/// only change where the *same* ladder starts — `warm = None`
/// reproduces [`run_tran_spec`] exactly.
///
/// # Errors
///
/// [`TransimError`] from the DC solve or the integration.
pub fn run_tran_spec_warm<D: Dae + ?Sized>(
    dae: &D,
    spec: &TranSpec,
    warm: Option<&[f64]>,
) -> Result<(TransientResult, Vec<f64>), TransimError> {
    // The deck's `.options solver=` choice rides on the spec and is
    // honored by both the DC solve and every step's Newton iteration.
    let newton = NewtonOptions {
        linear_solver: spec.solver,
        ..Default::default()
    };
    let x0 = match warm {
        Some(guess) => dc_operating_point_from(dae, guess, &newton)?,
        None => dc_operating_point(dae, &newton)?,
    };
    let step = if spec.dt > 0.0 {
        StepControl::Fixed(spec.dt)
    } else {
        StepControl::Adaptive {
            rtol: spec.rtol,
            atol: spec.atol,
            dt_init: 0.0,
            dt_min: spec.dt_min,
            dt_max: spec.dt_max,
        }
    };
    let res = run_transient(
        dae,
        &x0,
        0.0,
        spec.t_stop,
        &TransientOptions {
            integrator: spec.integrator,
            step,
            newton,
        },
    )?;
    Ok((res, x0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::parse_netlist;

    #[test]
    fn tran_spec_runs_rc_charging() {
        // RC driven by a DC source through a resistor: v settles to 5 V.
        let dae = parse_netlist(
            "V1 in 0 DC(5)\n\
             R1 in out 1k\n\
             C1 out 0 1u\n",
        )
        .unwrap();
        let spec = TranSpec::new(10e-3); // 10 time constants
        let res = run_tran_spec(&dae, &spec).unwrap();
        let names = dae.var_names();
        let out = names.iter().position(|n| n == "v(out)").unwrap();
        let v_end = res.states.last().unwrap()[out];
        assert!((v_end - 5.0).abs() < 1e-3, "v(out) = {v_end}");
    }

    #[test]
    fn tran_spec_fixed_step_counts() {
        let dae = parse_netlist(
            "I1 0 a 1m\n\
             R1 a 0 1k\n\
             C1 a 0 1u\n",
        )
        .unwrap();
        let spec = TranSpec {
            dt: 1e-5,
            ..TranSpec::new(1e-3)
        };
        let res = run_tran_spec(&dae, &spec).unwrap();
        assert_eq!(res.stats.steps, 100);
    }

    #[test]
    fn tran_spec_sparse_backend_matches_dense() {
        // Same fixed-step run through the sparse-LU backend must land on
        // bitwise-comparable trajectories (identical step sequence, same
        // solutions to solver tolerance).
        let dae = parse_netlist(
            "I1 0 a 1m\n\
             R1 a 0 1k\n\
             C1 a 0 1u\n\
             R2 a b 2k\n\
             C2 b 0 1u\n",
        )
        .unwrap();
        let mk = |solver| TranSpec {
            dt: 1e-5,
            solver,
            ..TranSpec::new(1e-3)
        };
        let dense = run_tran_spec(&dae, &mk(Default::default())).unwrap();
        let sparse = run_tran_spec(&dae, &mk(circuitdae::LinearSolverKind::SparseLu)).unwrap();
        assert_eq!(dense.times.len(), sparse.times.len());
        for (a, b) in dense.states.iter().zip(sparse.states.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-10, "{x} vs {y}");
            }
        }
    }
}
