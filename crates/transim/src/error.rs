//! Error type for the nonlinear/transient engines.

use std::fmt;

/// Errors produced by Newton solves, DC analysis and transient integration.
#[derive(Debug, Clone, PartialEq)]
pub enum TransimError {
    /// Newton iteration failed to converge.
    NewtonFailed {
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
        /// Simulation time at which the failure occurred (NaN for DC).
        at_time: f64,
    },
    /// The linearised system was singular.
    SingularJacobian {
        /// Simulation time at which the failure occurred (NaN for DC).
        at_time: f64,
    },
    /// Adaptive step control shrank the step below its minimum.
    StepTooSmall {
        /// Simulation time at which the failure occurred.
        at_time: f64,
        /// The rejected step size.
        step: f64,
    },
    /// Invalid configuration or input.
    BadInput(String),
}

impl fmt::Display for TransimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransimError::NewtonFailed {
                iterations,
                residual,
                at_time,
            } => write!(
                f,
                "newton failed after {iterations} iterations (residual {residual:.3e}) at t={at_time:.6e}"
            ),
            TransimError::SingularJacobian { at_time } => {
                write!(f, "singular jacobian at t={at_time:.6e}")
            }
            TransimError::StepTooSmall { at_time, step } => {
                write!(f, "time step {step:.3e} below minimum at t={at_time:.6e}")
            }
            TransimError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for TransimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_newton() {
        let e = TransimError::NewtonFailed {
            iterations: 7,
            residual: 1e-3,
            at_time: 0.5,
        };
        assert!(e.to_string().contains("7 iterations"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TransimError>();
    }
}
