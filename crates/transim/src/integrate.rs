//! Transient integration of circuit DAEs.
//!
//! Implements the implicit one/two-step methods circuit simulators rely
//! on — Backward Euler, Trapezoidal, BDF2 — behind one step-residual
//! abstraction, with fixed or LTE-adaptive step control. This engine is
//! both the paper's "transient simulation" baseline and the inner
//! integrator of the shooting and envelope methods.
//!
//! The scheme table, history predictor, LTE estimate, and step
//! controller live in the shared `timekit` crate (the same engine steps
//! the MPDE and WaMPDE envelopes along `t2`); this module wires them to
//! the circuit-DAE step residual and the damped Newton solver.

use crate::error::TransimError;
use crate::newton::{map_newton_err, NewtonOptions, NonlinearSystem};
use circuitdae::Dae;
use newtonkit::NewtonEngine;
use numkit::DMat;
use sparsekit::Triplets;
use timekit::{History, StepVerdict};

/// Implicit integration scheme (the shared `timekit` scheme table).
///
/// `Integrator::BackwardEuler` is first order, L-stable and strongly
/// damping (the safe choice for stiff MEMS dynamics);
/// `Integrator::Trapezoidal` (default) is second order, A-stable with no
/// numerical damping — the standard choice for oscillators;
/// `Integrator::Bdf2` is second order, L-stable, with variable-step
/// coefficients and a Backward Euler self-start.
pub use timekit::Scheme as Integrator;

/// Step-size policy (the shared `timekit` policy): `Fixed(dt)` or
/// `Adaptive { rtol, atol, dt_init, dt_min, dt_max }` with the canonical
/// `0.0 = auto` resolution (`dt_init = span/1000`, `dt_min = span·1e-12`,
/// `dt_max = span/10`).
pub use timekit::StepPolicy as StepControl;

/// Options for [`run_transient`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TransientOptions {
    /// Integration scheme.
    pub integrator: Integrator,
    /// Step policy.
    pub step: StepControl,
    /// Inner Newton options.
    pub newton: NewtonOptions,
}

/// Counters reported alongside a transient run.
///
/// This is the workspace-wide [`obskit::RunStats`] summary (shared with
/// `mpde::MpdeStats` and `wampde::EnvelopeStats`): `steps`, `rejected`,
/// `newton_iters`, `factorisations`, `symbolic_reuses`. The former
/// `newton_iterations` field survives as a deprecated accessor method.
pub type TransientStats = obskit::RunStats;

/// A transient waveform: accepted time points and states.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Accepted time points (strictly increasing, starts at `t0`).
    pub times: Vec<f64>,
    /// State vectors at each time point.
    pub states: Vec<Vec<f64>>,
    /// Run statistics.
    pub stats: TransientStats,
}

impl TransientResult {
    /// Extracts the waveform of unknown `i` across all time points.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn signal(&self, i: usize) -> Vec<f64> {
        self.states.iter().map(|x| x[i]).collect()
    }

    /// Linear interpolation of unknown `i` at time `t` (clamped to the
    /// simulated span).
    ///
    /// # Panics
    ///
    /// Panics when the result is empty or `i` out of range.
    pub fn sample(&self, i: usize, t: f64) -> f64 {
        let ts = &self.times;
        let n = ts.len();
        assert!(n > 0, "empty transient result");
        if t <= ts[0] {
            return self.states[0][i];
        }
        if t >= ts[n - 1] {
            return self.states[n - 1][i];
        }
        let hi = ts.partition_point(|&v| v <= t).min(n - 1);
        let lo = hi - 1;
        let w = (t - ts[lo]) / (ts[hi] - ts[lo]);
        self.states[lo][i] * (1.0 - w) + self.states[hi][i] * w
    }

    /// The final state.
    ///
    /// # Panics
    ///
    /// Panics when the result is empty.
    pub fn last(&self) -> &[f64] {
        self.states.last().expect("empty transient result")
    }
}

/// One implicit step as a Newton system:
/// `r(x) = a0h·q(x) + θ·f(x) + rconst`, Jacobian `a0h·C + θ·G`.
struct StepSystem<'a, D: Dae + ?Sized> {
    dae: &'a D,
    a0h: f64,
    theta: f64,
    rconst: Vec<f64>,
    qbuf: std::cell::RefCell<Vec<f64>>,
    fbuf: std::cell::RefCell<Vec<f64>>,
    cmat: std::cell::RefCell<DMat>,
    tbuf: std::cell::RefCell<Triplets>,
}

impl<D: Dae + ?Sized> StepSystem<'_, D> {
    fn new(dae: &D, a0h: f64, theta: f64, rconst: Vec<f64>) -> StepSystem<'_, D> {
        let n = dae.dim();
        StepSystem {
            dae,
            a0h,
            theta,
            rconst,
            qbuf: std::cell::RefCell::new(vec![0.0; n]),
            fbuf: std::cell::RefCell::new(vec![0.0; n]),
            cmat: std::cell::RefCell::new(DMat::zeros(n, n)),
            tbuf: std::cell::RefCell::new(Triplets::new(n, n)),
        }
    }
}

impl<D: Dae + ?Sized> NonlinearSystem for StepSystem<'_, D> {
    fn dim(&self) -> usize {
        self.dae.dim()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let mut q = self.qbuf.borrow_mut();
        let mut f = self.fbuf.borrow_mut();
        self.dae.eval_q(x, &mut q);
        self.dae.eval_f(x, &mut f);
        for i in 0..out.len() {
            out[i] = self.a0h * q[i] + self.theta * f[i] + self.rconst[i];
        }
    }

    fn jacobian(&self, x: &[f64], out: &mut DMat) {
        let mut c = self.cmat.borrow_mut();
        self.dae.jac_q(x, &mut c);
        self.dae.jac_f(x, out);
        out.scale(self.theta);
        out.axpy(self.a0h, &c);
    }

    fn jacobian_triplets(&self, x: &[f64], out: &mut Triplets) -> bool {
        // J = a0h·C + θ·G from the DAE's sparse stamps. One core lease
        // spans both stamp passes (they run back to back, never
        // concurrently, so one claim covers them).
        let lease = linsolve::CoreBudget::lease_ambient();
        let mut scratch = self.tbuf.borrow_mut();
        scratch.clear();
        self.dae
            .jac_q_triplets_threads(x, &mut scratch, lease.threads());
        out.append_scaled(&scratch, self.a0h);
        scratch.clear();
        self.dae
            .jac_f_triplets_threads(x, &mut scratch, lease.threads());
        out.append_scaled(&scratch, self.theta);
        true
    }
}

/// Integrates `d/dt q(x) + f(x) = b(t)` from `x0` over `[t0, t_end]`.
///
/// `x0` must be a consistent initial state (e.g. from
/// [`crate::dc_operating_point`], possibly perturbed to kick an
/// oscillator).
///
/// # Errors
///
/// * [`TransimError::BadInput`] for an empty/invalid time span or step;
/// * [`TransimError::NewtonFailed`] / [`TransimError::SingularJacobian`]
///   when a step's Newton solve fails at the minimum step;
/// * [`TransimError::StepTooSmall`] when adaptive control underflows.
pub fn run_transient<D: Dae + ?Sized>(
    dae: &D,
    x0: &[f64],
    t0: f64,
    t_end: f64,
    opts: &TransientOptions,
) -> Result<TransientResult, TransimError> {
    let n = dae.dim();
    if x0.len() != n {
        return Err(TransimError::BadInput(format!(
            "x0 has length {}, expected {}",
            x0.len(),
            n
        )));
    }
    // `partial_cmp` keeps the NaN-rejecting behavior of `!(t_end > t0)`.
    if t_end.partial_cmp(&t0) != Some(std::cmp::Ordering::Greater) {
        return Err(TransimError::BadInput("t_end must exceed t0".into()));
    }
    let span = t_end - t0;
    let mut ctl = opts
        .step
        .resolve(span, opts.integrator.order())
        .map_err(TransimError::BadInput)?;

    let mut times = Vec::with_capacity(1024);
    let mut states: Vec<Vec<f64>> = Vec::with_capacity(1024);
    let mut stats = TransientStats::default();

    let mut t = t0;
    let mut x = x0.to_vec();
    let mut q = vec![0.0; n];
    dae.eval_q(&x, &mut q);
    times.push(t);
    states.push(x.clone());

    let mut hist = History::new(3);
    hist.push(t, x.clone(), q.clone());

    let mut bbuf = vec![0.0; n];
    let mut fbuf = vec![0.0; n];
    let mut qlin = vec![0.0; n];
    // One Newton engine for the whole run: its factorisation cache spans
    // every step, so on the sparse-LU backend only the very first
    // iteration pays for symbolic analysis — the step Jacobian's pattern
    // never changes along a transient.
    let mut newton = NewtonEngine::new();
    // Hard cap prevents runaway loops if a caller passes absurd tolerances.
    let max_attempts = ctl.attempt_budget(span);

    while t < t_end - 1e-15 * span {
        if stats.steps + stats.rejected > max_attempts {
            return Err(TransimError::StepTooSmall {
                at_time: t,
                step: ctl.h(),
            });
        }
        let h_try = ctl.propose(t, t_end);
        let t_new = t + h_try;
        let step_span = obskit::span("time-step");
        step_span.attr("t", t_new);
        step_span.attr("h", h_try);

        // Step-residual constants: the charge-history term from the
        // scheme, plus (1−θ)·g_prev (trapezoidal only) and −θ·b(t_new).
        let coeffs = opts.integrator.step_coeffs(h_try, &hist, &mut qlin);
        let mut rconst = qlin.clone();
        if coeffs.theta < 1.0 {
            let prev = hist.latest().expect("history is seeded");
            dae.eval_f(&prev.z, &mut fbuf);
            dae.eval_b(prev.t, &mut bbuf);
            for i in 0..n {
                rconst[i] += (1.0 - coeffs.theta) * (fbuf[i] - bbuf[i]);
            }
        }
        dae.eval_b(t_new, &mut bbuf);
        for i in 0..n {
            rconst[i] -= coeffs.theta * bbuf[i];
        }

        let sys = StepSystem::new(dae, coeffs.a0h, coeffs.theta, rconst);
        let predicted = hist.predict(t_new);
        let mut x_new = predicted.clone().unwrap_or_else(|| x.clone());
        let newton_result = newton
            .solve(&sys, &mut x_new, &opts.newton)
            .map_err(map_newton_err);
        let nstats = newton.stats();
        stats.factorisations += nstats.factorisations;
        stats.symbolic_reuses += nstats.symbolic_reuses;

        let accept = match &newton_result {
            Ok(rep) => {
                stats.newton_iters += rep.iterations;
                match &predicted {
                    Some(pred) if ctl.adaptive() => {
                        let err = ctl.lte(&x_new, pred);
                        ctl.evaluate(h_try, err) == StepVerdict::Accept
                    }
                    // Fixed step, or no history yet: accept the step.
                    _ => true,
                }
            }
            Err(_) => {
                if ctl.at_min(h_try) {
                    return newton_result.map(|_| unreachable!()).map_err(|e| match e {
                        TransimError::NewtonFailed {
                            iterations,
                            residual,
                            ..
                        } => TransimError::NewtonFailed {
                            iterations,
                            residual,
                            at_time: t_new,
                        },
                        TransimError::SingularJacobian { .. } => {
                            TransimError::SingularJacobian { at_time: t_new }
                        }
                        other => other,
                    });
                }
                ctl.reject_failure(h_try);
                false
            }
        };

        step_span.attr("accepted", accept);
        if accept {
            t = t_new;
            x = x_new;
            dae.eval_q(&x, &mut q);
            hist.push(t, x.clone(), q.clone());
            times.push(t);
            states.push(x.clone());
            stats.steps += 1;
        } else {
            stats.rejected += 1;
            if ctl.underflowed() && newton_result.is_ok() {
                // Error control cannot be satisfied even at the minimum step.
                return Err(TransimError::StepTooSmall {
                    at_time: t,
                    step: ctl.h(),
                });
            }
        }
    }

    Ok(TransientResult {
        times,
        states,
        stats,
    })
}

/// Fixed-step convenience used by the paper's Figure 12 baseline:
/// integrates `n_cycles` of a signal with nominal period `period`, taking
/// `pts_per_cycle` steps per cycle.
///
/// # Errors
///
/// See [`run_transient`].
pub fn run_fixed_per_cycle<D: Dae + ?Sized>(
    dae: &D,
    x0: &[f64],
    period: f64,
    n_cycles: f64,
    pts_per_cycle: usize,
    integrator: Integrator,
) -> Result<TransientResult, TransimError> {
    let dt = period / pts_per_cycle as f64;
    let opts = TransientOptions {
        integrator,
        step: StepControl::Fixed(dt),
        ..Default::default()
    };
    run_transient(dae, x0, 0.0, period * n_cycles, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::analytic::{LinearOscillator, VanDerPol};
    use circuitdae::{Circuit, Device, Waveform};

    fn rc_charging() -> circuitdae::CircuitDae {
        // 1V step into series R=1k, C=1µ: v(t) = 1 − e^{−t/RC}, τ = 1 ms.
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.add(Device::voltage_source(a, Circuit::GND, Waveform::Dc(1.0)));
        ckt.add(Device::resistor(a, b, 1e3));
        ckt.add(Device::capacitor(b, Circuit::GND, 1e-6));
        ckt.build().unwrap()
    }

    #[test]
    fn rc_step_response_be() {
        let dae = rc_charging();
        let opts = TransientOptions {
            integrator: Integrator::BackwardEuler,
            step: StepControl::Fixed(1e-5),
            ..Default::default()
        };
        let res = run_transient(&dae, &[1.0, 0.0, -1e-3], 0.0, 5e-3, &opts).unwrap();
        let v_out = res.last()[1];
        let want = 1.0 - (-5.0_f64).exp();
        assert!((v_out - want).abs() < 1e-3, "v_out={v_out}");
    }

    #[test]
    fn trapezoidal_is_second_order() {
        // Halving the step should cut the error by ~4 for trapezoidal.
        let osc = LinearOscillator::undamped(1.0);
        let t_end = 2.0;
        let exact = f64::cos(t_end);
        let mut errs = Vec::new();
        for &dt in &[0.02, 0.01] {
            let opts = TransientOptions {
                integrator: Integrator::Trapezoidal,
                step: StepControl::Fixed(dt),
                ..Default::default()
            };
            let res = run_transient(&osc, &[1.0, 0.0], 0.0, t_end, &opts).unwrap();
            errs.push((res.last()[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(ratio > 3.0 && ratio < 5.0, "convergence ratio {ratio}");
    }

    #[test]
    fn backward_euler_is_first_order() {
        let osc = LinearOscillator::undamped(1.0);
        let t_end = 1.0;
        let exact = f64::cos(t_end);
        let mut errs = Vec::new();
        for &dt in &[0.002, 0.001] {
            let opts = TransientOptions {
                integrator: Integrator::BackwardEuler,
                step: StepControl::Fixed(dt),
                ..Default::default()
            };
            let res = run_transient(&osc, &[1.0, 0.0], 0.0, t_end, &opts).unwrap();
            errs.push((res.last()[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(ratio > 1.7 && ratio < 2.3, "convergence ratio {ratio}");
    }

    #[test]
    fn bdf2_is_second_order() {
        let osc = LinearOscillator::undamped(1.0);
        let t_end = 2.0;
        let exact = f64::cos(t_end);
        let mut errs = Vec::new();
        for &dt in &[0.02, 0.01] {
            let opts = TransientOptions {
                integrator: Integrator::Bdf2,
                step: StepControl::Fixed(dt),
                ..Default::default()
            };
            let res = run_transient(&osc, &[1.0, 0.0], 0.0, t_end, &opts).unwrap();
            errs.push((res.last()[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(ratio > 3.0 && ratio < 5.0, "convergence ratio {ratio}");
    }

    #[test]
    fn adaptive_matches_exact_solution() {
        let osc = LinearOscillator {
            omega: 2.0,
            zeta: 0.1,
            amplitude: 0.0,
            freq_hz: 0.0,
        };
        let opts = TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol: 1e-8,
                atol: 1e-12,
                dt_init: 1e-3,
                dt_min: 0.0,
                dt_max: 0.0,
            },
            ..Default::default()
        };
        let res = run_transient(&osc, &[1.0, 0.0], 0.0, 3.0, &opts).unwrap();
        for (i, &t) in res.times.iter().enumerate().step_by(50) {
            let want = osc.exact_unforced(1.0, t);
            assert!(
                (res.states[i][0] - want).abs() < 1e-5,
                "t={t}: {} vs {want}",
                res.states[i][0]
            );
        }
        assert!(res.stats.steps > 10);
    }

    #[test]
    fn van_der_pol_reaches_limit_cycle_amplitude() {
        let vdp = VanDerPol::unforced(0.5);
        let opts = TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Fixed(0.01),
            ..Default::default()
        };
        let res = run_transient(&vdp, &[0.1, 0.0], 0.0, 60.0, &opts).unwrap();
        // After many periods the amplitude should be ≈ 2.
        let tail_max = res
            .states
            .iter()
            .skip(res.states.len() * 3 / 4)
            .map(|x| x[0].abs())
            .fold(0.0_f64, f64::max);
        assert!((tail_max - 2.0).abs() < 0.1, "amplitude {tail_max}");
    }

    #[test]
    fn sample_interpolates() {
        let osc = LinearOscillator::undamped(1.0);
        let opts = TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Fixed(0.01),
            ..Default::default()
        };
        let res = run_transient(&osc, &[1.0, 0.0], 0.0, 1.0, &opts).unwrap();
        let v = res.sample(0, 0.5);
        assert!((v - 0.5_f64.cos()).abs() < 1e-3);
        // Clamping beyond the ends.
        assert_eq!(res.sample(0, -1.0), res.states[0][0]);
        assert_eq!(res.sample(0, 99.0), res.last()[0]);
    }

    #[test]
    fn bad_inputs_rejected() {
        let osc = LinearOscillator::undamped(1.0);
        let opts = TransientOptions::default();
        assert!(run_transient(&osc, &[1.0], 0.0, 1.0, &opts).is_err());
        assert!(run_transient(&osc, &[1.0, 0.0], 1.0, 1.0, &opts).is_err());
        let bad = TransientOptions {
            step: StepControl::Fixed(0.0),
            ..Default::default()
        };
        assert!(run_transient(&osc, &[1.0, 0.0], 0.0, 1.0, &bad).is_err());
    }

    #[test]
    fn fixed_per_cycle_helper() {
        let osc = LinearOscillator::undamped(2.0 * std::f64::consts::PI);
        let res =
            run_fixed_per_cycle(&osc, &[1.0, 0.0], 1.0, 2.0, 100, Integrator::Trapezoidal).unwrap();
        assert_eq!(res.stats.steps, 200);
        assert!((res.last()[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn final_step_is_stretched_not_micro() {
        // A span that leaves a sub-1 % remainder after an integer number
        // of fixed steps must absorb it into the final step instead of
        // emitting a micro-step whose C/h dominates the Jacobian
        // (regression: transim used to take the micro-step while the
        // envelope solvers stretched).
        let osc = LinearOscillator::undamped(1.0);
        let opts = TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Fixed(0.1),
            ..Default::default()
        };
        let t_end = 1.0004; // 10 steps of 0.1 plus a 0.4 %-of-dt remainder
        let res = run_transient(&osc, &[1.0, 0.0], 0.0, t_end, &opts).unwrap();
        assert_eq!(res.stats.steps, 10, "times: {:?}", res.times);
        let last = *res.times.last().unwrap();
        assert!((last - t_end).abs() < 1e-12, "end {last}");
        // Every step is within 1 % of the nominal dt.
        for w in res.times.windows(2) {
            let h = w[1] - w[0];
            assert!(h > 0.099 && h < 0.102, "step {h}");
        }
    }

    #[test]
    fn stiff_mems_like_system_with_be() {
        // Very stiff linear system: fast pole 1e8, slow pole 1e3.
        struct Stiff;
        impl circuitdae::Dae for Stiff {
            fn dim(&self) -> usize {
                2
            }
            fn eval_q(&self, x: &[f64], out: &mut [f64]) {
                out.copy_from_slice(x);
            }
            fn eval_f(&self, x: &[f64], out: &mut [f64]) {
                out[0] = 1e3 * x[0];
                out[1] = 1e8 * (x[1] - x[0]);
            }
            fn eval_b(&self, _t: f64, out: &mut [f64]) {
                out[0] = 0.0;
                out[1] = 0.0;
            }
            fn jac_q(&self, _x: &[f64], out: &mut numkit::DMat) {
                out.fill_zero();
                out[(0, 0)] = 1.0;
                out[(1, 1)] = 1.0;
            }
            fn jac_f(&self, _x: &[f64], out: &mut numkit::DMat) {
                out.fill_zero();
                out[(0, 0)] = 1e3;
                out[(1, 0)] = -1e8;
                out[(1, 1)] = 1e8;
            }
        }
        let opts = TransientOptions {
            integrator: Integrator::BackwardEuler,
            step: StepControl::Fixed(1e-5), // far larger than 1/1e8
            ..Default::default()
        };
        let res = run_transient(&Stiff, &[1.0, 0.0], 0.0, 1e-3, &opts).unwrap();
        // x0 decays like e^{-1e3 t}; x1 slaves to x0. No blow-up allowed.
        let last = res.last();
        assert!(last[0] > 0.0 && last[0] < 1.0);
        assert!((last[1] - last[0]).abs() < 1e-3);
    }
}
