//! Transient integration of circuit DAEs.
//!
//! Implements the implicit one/two-step methods circuit simulators rely
//! on — Backward Euler, Trapezoidal, BDF2 — behind one step-residual
//! abstraction, with fixed or LTE-adaptive step control. This engine is
//! both the paper's "transient simulation" baseline and the inner
//! integrator of the shooting and envelope methods.

use crate::error::TransimError;
use crate::newton::{newton_solve, NewtonOptions, NonlinearSystem};
use circuitdae::Dae;
use numkit::vecops::wrms_norm;
use numkit::DMat;
use sparsekit::Triplets;

/// Implicit integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First order, L-stable, strongly damping. The safe choice for stiff
    /// MEMS dynamics.
    BackwardEuler,
    /// Second order, A-stable, no numerical damping — the standard choice
    /// for oscillators (SPICE default).
    #[default]
    Trapezoidal,
    /// Second order, L-stable two-step BDF (variable-step coefficients);
    /// starts itself with one Backward Euler step.
    Bdf2,
}

impl Integrator {
    /// Classical order of accuracy.
    pub fn order(&self) -> usize {
        match self {
            Integrator::BackwardEuler => 1,
            Integrator::Trapezoidal | Integrator::Bdf2 => 2,
        }
    }
}

/// Step-size policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepControl {
    /// Constant step (the paper's "N points per cycle" baseline mode).
    Fixed(f64),
    /// LTE-based adaptive control.
    Adaptive {
        /// Relative local-error tolerance.
        rtol: f64,
        /// Absolute local-error tolerance.
        atol: f64,
        /// Initial step (`0.0` = auto: span/1000).
        dt_init: f64,
        /// Smallest allowed step (`0.0` = auto: span·1e-12).
        dt_min: f64,
        /// Largest allowed step (`0.0` = auto: span/10).
        dt_max: f64,
    },
}

impl Default for StepControl {
    fn default() -> Self {
        StepControl::Adaptive {
            rtol: 1e-6,
            atol: 1e-12,
            dt_init: 0.0,
            dt_min: 0.0,
            dt_max: 0.0,
        }
    }
}

/// Options for [`run_transient`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TransientOptions {
    /// Integration scheme.
    pub integrator: Integrator,
    /// Step policy.
    pub step: StepControl,
    /// Inner Newton options.
    pub newton: NewtonOptions,
}

/// Counters reported alongside a transient run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransientStats {
    /// Accepted steps.
    pub steps: usize,
    /// Steps rejected by error control or Newton failure.
    pub rejected: usize,
    /// Total Newton iterations.
    pub newton_iterations: usize,
}

/// A transient waveform: accepted time points and states.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Accepted time points (strictly increasing, starts at `t0`).
    pub times: Vec<f64>,
    /// State vectors at each time point.
    pub states: Vec<Vec<f64>>,
    /// Run statistics.
    pub stats: TransientStats,
}

impl TransientResult {
    /// Extracts the waveform of unknown `i` across all time points.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn signal(&self, i: usize) -> Vec<f64> {
        self.states.iter().map(|x| x[i]).collect()
    }

    /// Linear interpolation of unknown `i` at time `t` (clamped to the
    /// simulated span).
    ///
    /// # Panics
    ///
    /// Panics when the result is empty or `i` out of range.
    pub fn sample(&self, i: usize, t: f64) -> f64 {
        let ts = &self.times;
        let n = ts.len();
        assert!(n > 0, "empty transient result");
        if t <= ts[0] {
            return self.states[0][i];
        }
        if t >= ts[n - 1] {
            return self.states[n - 1][i];
        }
        let hi = ts.partition_point(|&v| v <= t).min(n - 1);
        let lo = hi - 1;
        let w = (t - ts[lo]) / (ts[hi] - ts[lo]);
        self.states[lo][i] * (1.0 - w) + self.states[hi][i] * w
    }

    /// The final state.
    ///
    /// # Panics
    ///
    /// Panics when the result is empty.
    pub fn last(&self) -> &[f64] {
        self.states.last().expect("empty transient result")
    }
}

/// One implicit step as a Newton system:
/// `r(x) = a0h·q(x) + θ·f(x) + rconst`, Jacobian `a0h·C + θ·G`.
struct StepSystem<'a, D: Dae + ?Sized> {
    dae: &'a D,
    a0h: f64,
    theta: f64,
    rconst: Vec<f64>,
    qbuf: std::cell::RefCell<Vec<f64>>,
    fbuf: std::cell::RefCell<Vec<f64>>,
    cmat: std::cell::RefCell<DMat>,
    tbuf: std::cell::RefCell<Triplets>,
}

impl<D: Dae + ?Sized> StepSystem<'_, D> {
    fn new(dae: &D, a0h: f64, theta: f64, rconst: Vec<f64>) -> StepSystem<'_, D> {
        let n = dae.dim();
        StepSystem {
            dae,
            a0h,
            theta,
            rconst,
            qbuf: std::cell::RefCell::new(vec![0.0; n]),
            fbuf: std::cell::RefCell::new(vec![0.0; n]),
            cmat: std::cell::RefCell::new(DMat::zeros(n, n)),
            tbuf: std::cell::RefCell::new(Triplets::new(n, n)),
        }
    }
}

impl<D: Dae + ?Sized> NonlinearSystem for StepSystem<'_, D> {
    fn dim(&self) -> usize {
        self.dae.dim()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let mut q = self.qbuf.borrow_mut();
        let mut f = self.fbuf.borrow_mut();
        self.dae.eval_q(x, &mut q);
        self.dae.eval_f(x, &mut f);
        for i in 0..out.len() {
            out[i] = self.a0h * q[i] + self.theta * f[i] + self.rconst[i];
        }
    }

    fn jacobian(&self, x: &[f64], out: &mut DMat) {
        let mut c = self.cmat.borrow_mut();
        self.dae.jac_q(x, &mut c);
        self.dae.jac_f(x, out);
        out.scale(self.theta);
        out.axpy(self.a0h, &c);
    }

    fn jacobian_triplets(&self, x: &[f64], out: &mut Triplets) -> bool {
        // J = a0h·C + θ·G from the DAE's sparse stamps.
        let mut scratch = self.tbuf.borrow_mut();
        scratch.clear();
        self.dae.jac_q_triplets(x, &mut scratch);
        out.append_scaled(&scratch, self.a0h);
        scratch.clear();
        self.dae.jac_f_triplets(x, &mut scratch);
        out.append_scaled(&scratch, self.theta);
        true
    }
}

/// History ring used to build step residuals and LTE predictors.
struct History {
    /// (t, x, q(x)) of up to the last three accepted points, newest first.
    entries: Vec<(f64, Vec<f64>, Vec<f64>)>,
}

impl History {
    fn push(&mut self, t: f64, x: Vec<f64>, q: Vec<f64>) {
        self.entries.insert(0, (t, x, q));
        self.entries.truncate(3);
    }

    /// Polynomial extrapolation of the state to time `t` (order = #points-1,
    /// capped at quadratic). Used as the LTE predictor.
    fn predict(&self, t: f64) -> Option<Vec<f64>> {
        match self.entries.len() {
            0 | 1 => None,
            2 => {
                let (t1, x1, _) = &self.entries[0];
                let (t0, x0, _) = &self.entries[1];
                let w = (t - t0) / (t1 - t0);
                Some(
                    x0.iter()
                        .zip(x1.iter())
                        .map(|(a, b)| a * (1.0 - w) + b * w)
                        .collect(),
                )
            }
            _ => {
                let (t2, x2, _) = &self.entries[0];
                let (t1, x1, _) = &self.entries[1];
                let (t0, x0, _) = &self.entries[2];
                let l0 = (t - t1) * (t - t2) / ((t0 - t1) * (t0 - t2));
                let l1 = (t - t0) * (t - t2) / ((t1 - t0) * (t1 - t2));
                let l2 = (t - t0) * (t - t1) / ((t2 - t0) * (t2 - t1));
                Some(
                    (0..x0.len())
                        .map(|i| x0[i] * l0 + x1[i] * l1 + x2[i] * l2)
                        .collect(),
                )
            }
        }
    }
}

/// Integrates `d/dt q(x) + f(x) = b(t)` from `x0` over `[t0, t_end]`.
///
/// `x0` must be a consistent initial state (e.g. from
/// [`crate::dc_operating_point`], possibly perturbed to kick an
/// oscillator).
///
/// # Errors
///
/// * [`TransimError::BadInput`] for an empty/invalid time span or step;
/// * [`TransimError::NewtonFailed`] / [`TransimError::SingularJacobian`]
///   when a step's Newton solve fails at the minimum step;
/// * [`TransimError::StepTooSmall`] when adaptive control underflows.
pub fn run_transient<D: Dae + ?Sized>(
    dae: &D,
    x0: &[f64],
    t0: f64,
    t_end: f64,
    opts: &TransientOptions,
) -> Result<TransientResult, TransimError> {
    let n = dae.dim();
    if x0.len() != n {
        return Err(TransimError::BadInput(format!(
            "x0 has length {}, expected {}",
            x0.len(),
            n
        )));
    }
    // `partial_cmp` keeps the NaN-rejecting behavior of `!(t_end > t0)`.
    if t_end.partial_cmp(&t0) != Some(std::cmp::Ordering::Greater) {
        return Err(TransimError::BadInput("t_end must exceed t0".into()));
    }
    let span = t_end - t0;
    let (adaptive, rtol, atol, mut h, h_min, h_max) = match opts.step {
        StepControl::Fixed(dt) => {
            if dt.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(TransimError::BadInput("fixed step must be positive".into()));
            }
            (false, 0.0, 0.0, dt, dt, dt)
        }
        StepControl::Adaptive {
            rtol,
            atol,
            dt_init,
            dt_min,
            dt_max,
        } => {
            let h0 = if dt_init > 0.0 {
                dt_init
            } else {
                span / 1000.0
            };
            let hmin = if dt_min > 0.0 { dt_min } else { span * 1e-12 };
            let hmax = if dt_max > 0.0 { dt_max } else { span / 10.0 };
            (true, rtol, atol, h0, hmin, hmax)
        }
    };

    let mut times = Vec::with_capacity(1024);
    let mut states: Vec<Vec<f64>> = Vec::with_capacity(1024);
    let mut stats = TransientStats::default();

    let mut t = t0;
    let mut x = x0.to_vec();
    let mut q = vec![0.0; n];
    dae.eval_q(&x, &mut q);
    times.push(t);
    states.push(x.clone());

    let mut hist = History {
        entries: vec![(t, x.clone(), q.clone())],
    };

    let mut bbuf = vec![0.0; n];
    let mut fbuf = vec![0.0; n];
    let order = opts.integrator.order();
    // Hard cap prevents runaway loops if a caller passes absurd tolerances.
    let max_steps =
        200_000_000usize.min(((span / h_min).ceil() as usize).saturating_mul(2).max(1024));

    while t < t_end - 1e-15 * span {
        if stats.steps + stats.rejected > max_steps {
            return Err(TransimError::StepTooSmall {
                at_time: t,
                step: h,
            });
        }
        let h_try = h.min(t_end - t);
        let t_new = t + h_try;

        // Build the step residual constants.
        let (a0h, theta, mut rconst) = match opts.integrator {
            Integrator::BackwardEuler => {
                let mut rc = vec![0.0; n];
                for (r, qv) in rc.iter_mut().zip(&hist.entries[0].2) {
                    *r = -qv / h_try;
                }
                (1.0 / h_try, 1.0, rc)
            }
            Integrator::Trapezoidal => {
                let mut rc = vec![0.0; n];
                let (tp, xp, qp) = &hist.entries[0];
                dae.eval_f(xp, &mut fbuf);
                dae.eval_b(*tp, &mut bbuf);
                for i in 0..n {
                    rc[i] = -qp[i] / h_try + 0.5 * (fbuf[i] - bbuf[i]);
                }
                (1.0 / h_try, 0.5, rc)
            }
            Integrator::Bdf2 => {
                if hist.entries.len() < 2 {
                    // Self-start with one BE step.
                    let mut rc = vec![0.0; n];
                    for (r, qv) in rc.iter_mut().zip(&hist.entries[0].2) {
                        *r = -qv / h_try;
                    }
                    (1.0 / h_try, 1.0, rc)
                } else {
                    let (t1, _, q1) = &hist.entries[0];
                    let (t2, _, q2) = &hist.entries[1];
                    let h_prev = t1 - t2;
                    let rho = h_try / h_prev;
                    let a0 = (1.0 + 2.0 * rho) / (1.0 + rho);
                    let a1 = -(1.0 + rho);
                    let a2 = rho * rho / (1.0 + rho);
                    let mut rc = vec![0.0; n];
                    for i in 0..n {
                        rc[i] = (a1 * q1[i] + a2 * q2[i]) / h_try;
                    }
                    (a0 / h_try, 1.0, rc)
                }
            }
        };
        dae.eval_b(t_new, &mut bbuf);
        for i in 0..n {
            rconst[i] -= theta * bbuf[i];
        }

        let sys = StepSystem::new(dae, a0h, theta, rconst);
        let mut x_new = hist.predict(t_new).unwrap_or_else(|| x.clone());
        let newton_result = newton_solve(&sys, &mut x_new, &opts.newton);

        let accept = match &newton_result {
            Ok(rep) => {
                stats.newton_iterations += rep.iterations;
                if adaptive {
                    match hist.predict(t_new) {
                        Some(pred) => {
                            let diff: Vec<f64> =
                                x_new.iter().zip(pred.iter()).map(|(a, b)| a - b).collect();
                            // Predictor-corrector difference over-estimates the
                            // LTE; the 1/5 factor is the usual calibration.
                            let err = wrms_norm(&diff, &x_new, atol, rtol) / 5.0;
                            if err <= 1.0 {
                                let grow = 0.9 * err.max(1e-10).powf(-1.0 / (order as f64 + 1.0));
                                h = (h_try * grow.clamp(0.25, 2.5)).clamp(h_min, h_max);
                                true
                            } else {
                                let shrink = 0.9 * err.powf(-1.0 / (order as f64 + 1.0));
                                h = (h_try * shrink.clamp(0.1, 0.9)).max(h_min);
                                false
                            }
                        }
                        None => true, // no history yet: accept the first step
                    }
                } else {
                    true
                }
            }
            Err(_) => {
                if h_try <= h_min * 1.0000001 {
                    return newton_result.map(|_| unreachable!()).map_err(|e| match e {
                        TransimError::NewtonFailed {
                            iterations,
                            residual,
                            ..
                        } => TransimError::NewtonFailed {
                            iterations,
                            residual,
                            at_time: t_new,
                        },
                        TransimError::SingularJacobian { .. } => {
                            TransimError::SingularJacobian { at_time: t_new }
                        }
                        other => other,
                    });
                }
                h = (h_try * 0.25).max(h_min);
                false
            }
        };

        if accept {
            t = t_new;
            x = x_new;
            dae.eval_q(&x, &mut q);
            hist.push(t, x.clone(), q.clone());
            times.push(t);
            states.push(x.clone());
            stats.steps += 1;
        } else {
            stats.rejected += 1;
            if adaptive && h <= h_min * 1.0000001 && newton_result.is_ok() {
                // Error control cannot be satisfied even at the minimum step.
                return Err(TransimError::StepTooSmall {
                    at_time: t,
                    step: h,
                });
            }
        }
    }

    Ok(TransientResult {
        times,
        states,
        stats,
    })
}

/// Fixed-step convenience used by the paper's Figure 12 baseline:
/// integrates `n_cycles` of a signal with nominal period `period`, taking
/// `pts_per_cycle` steps per cycle.
///
/// # Errors
///
/// See [`run_transient`].
pub fn run_fixed_per_cycle<D: Dae + ?Sized>(
    dae: &D,
    x0: &[f64],
    period: f64,
    n_cycles: f64,
    pts_per_cycle: usize,
    integrator: Integrator,
) -> Result<TransientResult, TransimError> {
    let dt = period / pts_per_cycle as f64;
    let opts = TransientOptions {
        integrator,
        step: StepControl::Fixed(dt),
        ..Default::default()
    };
    run_transient(dae, x0, 0.0, period * n_cycles, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::analytic::{LinearOscillator, VanDerPol};
    use circuitdae::{Circuit, Device, Waveform};

    fn rc_charging() -> circuitdae::CircuitDae {
        // 1V step into series R=1k, C=1µ: v(t) = 1 − e^{−t/RC}, τ = 1 ms.
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.add(Device::voltage_source(a, Circuit::GND, Waveform::Dc(1.0)));
        ckt.add(Device::resistor(a, b, 1e3));
        ckt.add(Device::capacitor(b, Circuit::GND, 1e-6));
        ckt.build().unwrap()
    }

    #[test]
    fn rc_step_response_be() {
        let dae = rc_charging();
        let opts = TransientOptions {
            integrator: Integrator::BackwardEuler,
            step: StepControl::Fixed(1e-5),
            ..Default::default()
        };
        let res = run_transient(&dae, &[1.0, 0.0, -1e-3], 0.0, 5e-3, &opts).unwrap();
        let v_out = res.last()[1];
        let want = 1.0 - (-5.0_f64).exp();
        assert!((v_out - want).abs() < 1e-3, "v_out={v_out}");
    }

    #[test]
    fn trapezoidal_is_second_order() {
        // Halving the step should cut the error by ~4 for trapezoidal.
        let osc = LinearOscillator::undamped(1.0);
        let t_end = 2.0;
        let exact = f64::cos(t_end);
        let mut errs = Vec::new();
        for &dt in &[0.02, 0.01] {
            let opts = TransientOptions {
                integrator: Integrator::Trapezoidal,
                step: StepControl::Fixed(dt),
                ..Default::default()
            };
            let res = run_transient(&osc, &[1.0, 0.0], 0.0, t_end, &opts).unwrap();
            errs.push((res.last()[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(ratio > 3.0 && ratio < 5.0, "convergence ratio {ratio}");
    }

    #[test]
    fn backward_euler_is_first_order() {
        let osc = LinearOscillator::undamped(1.0);
        let t_end = 1.0;
        let exact = f64::cos(t_end);
        let mut errs = Vec::new();
        for &dt in &[0.002, 0.001] {
            let opts = TransientOptions {
                integrator: Integrator::BackwardEuler,
                step: StepControl::Fixed(dt),
                ..Default::default()
            };
            let res = run_transient(&osc, &[1.0, 0.0], 0.0, t_end, &opts).unwrap();
            errs.push((res.last()[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(ratio > 1.7 && ratio < 2.3, "convergence ratio {ratio}");
    }

    #[test]
    fn bdf2_is_second_order() {
        let osc = LinearOscillator::undamped(1.0);
        let t_end = 2.0;
        let exact = f64::cos(t_end);
        let mut errs = Vec::new();
        for &dt in &[0.02, 0.01] {
            let opts = TransientOptions {
                integrator: Integrator::Bdf2,
                step: StepControl::Fixed(dt),
                ..Default::default()
            };
            let res = run_transient(&osc, &[1.0, 0.0], 0.0, t_end, &opts).unwrap();
            errs.push((res.last()[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(ratio > 3.0 && ratio < 5.0, "convergence ratio {ratio}");
    }

    #[test]
    fn adaptive_matches_exact_solution() {
        let osc = LinearOscillator {
            omega: 2.0,
            zeta: 0.1,
            amplitude: 0.0,
            freq_hz: 0.0,
        };
        let opts = TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol: 1e-8,
                atol: 1e-12,
                dt_init: 1e-3,
                dt_min: 0.0,
                dt_max: 0.0,
            },
            ..Default::default()
        };
        let res = run_transient(&osc, &[1.0, 0.0], 0.0, 3.0, &opts).unwrap();
        for (i, &t) in res.times.iter().enumerate().step_by(50) {
            let want = osc.exact_unforced(1.0, t);
            assert!(
                (res.states[i][0] - want).abs() < 1e-5,
                "t={t}: {} vs {want}",
                res.states[i][0]
            );
        }
        assert!(res.stats.steps > 10);
    }

    #[test]
    fn van_der_pol_reaches_limit_cycle_amplitude() {
        let vdp = VanDerPol::unforced(0.5);
        let opts = TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Fixed(0.01),
            ..Default::default()
        };
        let res = run_transient(&vdp, &[0.1, 0.0], 0.0, 60.0, &opts).unwrap();
        // After many periods the amplitude should be ≈ 2.
        let tail_max = res
            .states
            .iter()
            .skip(res.states.len() * 3 / 4)
            .map(|x| x[0].abs())
            .fold(0.0_f64, f64::max);
        assert!((tail_max - 2.0).abs() < 0.1, "amplitude {tail_max}");
    }

    #[test]
    fn sample_interpolates() {
        let osc = LinearOscillator::undamped(1.0);
        let opts = TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Fixed(0.01),
            ..Default::default()
        };
        let res = run_transient(&osc, &[1.0, 0.0], 0.0, 1.0, &opts).unwrap();
        let v = res.sample(0, 0.5);
        assert!((v - 0.5_f64.cos()).abs() < 1e-3);
        // Clamping beyond the ends.
        assert_eq!(res.sample(0, -1.0), res.states[0][0]);
        assert_eq!(res.sample(0, 99.0), res.last()[0]);
    }

    #[test]
    fn bad_inputs_rejected() {
        let osc = LinearOscillator::undamped(1.0);
        let opts = TransientOptions::default();
        assert!(run_transient(&osc, &[1.0], 0.0, 1.0, &opts).is_err());
        assert!(run_transient(&osc, &[1.0, 0.0], 1.0, 1.0, &opts).is_err());
        let bad = TransientOptions {
            step: StepControl::Fixed(0.0),
            ..Default::default()
        };
        assert!(run_transient(&osc, &[1.0, 0.0], 0.0, 1.0, &bad).is_err());
    }

    #[test]
    fn fixed_per_cycle_helper() {
        let osc = LinearOscillator::undamped(2.0 * std::f64::consts::PI);
        let res =
            run_fixed_per_cycle(&osc, &[1.0, 0.0], 1.0, 2.0, 100, Integrator::Trapezoidal).unwrap();
        assert_eq!(res.stats.steps, 200);
        assert!((res.last()[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn stiff_mems_like_system_with_be() {
        // Very stiff linear system: fast pole 1e8, slow pole 1e3.
        struct Stiff;
        impl circuitdae::Dae for Stiff {
            fn dim(&self) -> usize {
                2
            }
            fn eval_q(&self, x: &[f64], out: &mut [f64]) {
                out.copy_from_slice(x);
            }
            fn eval_f(&self, x: &[f64], out: &mut [f64]) {
                out[0] = 1e3 * x[0];
                out[1] = 1e8 * (x[1] - x[0]);
            }
            fn eval_b(&self, _t: f64, out: &mut [f64]) {
                out[0] = 0.0;
                out[1] = 0.0;
            }
            fn jac_q(&self, _x: &[f64], out: &mut numkit::DMat) {
                out.fill_zero();
                out[(0, 0)] = 1.0;
                out[(1, 1)] = 1.0;
            }
            fn jac_f(&self, _x: &[f64], out: &mut numkit::DMat) {
                out.fill_zero();
                out[(0, 0)] = 1e3;
                out[(1, 0)] = -1e8;
                out[(1, 1)] = 1e8;
            }
        }
        let opts = TransientOptions {
            integrator: Integrator::BackwardEuler,
            step: StepControl::Fixed(1e-5), // far larger than 1/1e8
            ..Default::default()
        };
        let res = run_transient(&Stiff, &[1.0, 0.0], 0.0, 1e-3, &opts).unwrap();
        // x0 decays like e^{-1e3 t}; x1 slaves to x0. No blow-up allowed.
        let last = res.last();
        assert!(last[0] > 0.0 && last[0] < 1.0);
        assert!((last[1] - last[0]).abs() < 1e-3);
    }
}
