//! Nonlinear solving and transient simulation of circuit DAEs.
//!
//! This crate is the "conventional methods" substrate of the reproduction:
//!
//! * [`newton`] — damped Newton–Raphson, re-exported from the shared
//!   `newtonkit` engine (with pattern-reusing sparse refactorisation);
//! * [`dcop`] — DC operating point with gmin continuation;
//! * [`integrate`] — transient integration of
//!   `d/dt q(x) + f(x) = b(t)` with Backward Euler, Trapezoidal and BDF2
//!   methods, fixed or LTE-adaptive steps. This is the baseline the paper
//!   compares the WaMPDE against ("ODE: 50 pts/cycle" etc. in Figure 12).
//!
//! # Example
//!
//! ```
//! use circuitdae::analytic::LinearOscillator;
//! use transim::integrate::{run_transient, Integrator, StepControl, TransientOptions};
//!
//! # fn main() -> Result<(), transim::TransimError> {
//! let osc = LinearOscillator::undamped(1.0);
//! let opts = TransientOptions {
//!     integrator: Integrator::Trapezoidal,
//!     step: StepControl::Fixed(1e-3),
//!     ..Default::default()
//! };
//! let res = run_transient(&osc, &[1.0, 0.0], 0.0, 1.0, &opts)?;
//! let last = res.states.last().unwrap();
//! assert!((last[0] - 1.0_f64.cos()).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```

pub mod dcop;
pub mod deck;
pub mod error;
pub mod integrate;
pub mod newton;

pub use dcop::{dc_operating_point, dc_operating_point_from};
pub use deck::{run_tran_spec, run_tran_spec_warm};
pub use error::TransimError;
pub use integrate::{
    run_fixed_per_cycle, run_transient, Integrator, StepControl, TransientOptions, TransientResult,
};
pub use newton::{newton_solve, Damping, NewtonOptions, NewtonReport, NonlinearSystem};
