//! Damped Newton–Raphson for nonlinear systems with a pluggable
//! dense/sparse linear-solver backend (the shared `linsolve` layer).

use crate::error::TransimError;
use linsolve::{FactoredJacobian, LinearSolverKind, NewtonMatrix};
use numkit::vecops::{norm2, wrms_norm};
use numkit::DMat;
use sparsekit::Triplets;

/// A square nonlinear system `r(x) = 0`.
///
/// The dense [`NonlinearSystem::jacobian`] is mandatory; systems that can
/// assemble their Jacobian sparsely (circuit DAE steps, collocation
/// blocks) additionally implement [`NonlinearSystem::jacobian_triplets`]
/// so the sparse backends skip the `O(dim²)` dense stamp.
pub trait NonlinearSystem {
    /// Number of unknowns.
    fn dim(&self) -> usize;
    /// Residual `r(x)` into `out`.
    fn residual(&self, x: &[f64], out: &mut [f64]);
    /// Jacobian `∂r/∂x` into `out` (`dim × dim`).
    fn jacobian(&self, x: &[f64], out: &mut DMat);
    /// Sparse Jacobian pushed as triplets into `out` (a cleared
    /// `dim × dim` buffer; duplicates sum). Returns `false` when the
    /// system has no sparse assembly — the solver then stamps densely and
    /// converts.
    fn jacobian_triplets(&self, _x: &[f64], _out: &mut Triplets) -> bool {
        false
    }
}

/// Options for [`newton_solve`].
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Absolute tolerance on the update (per component).
    pub abstol: f64,
    /// Relative tolerance on the update (per component).
    pub reltol: f64,
    /// Smallest damping factor tried before declaring failure.
    pub min_damping: f64,
    /// Linear-solver backend for the per-iteration factorisation.
    pub linear_solver: LinearSolverKind,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 50,
            abstol: 1e-12,
            reltol: 1e-9,
            min_damping: 1.0 / 64.0,
            linear_solver: LinearSolverKind::default(),
        }
    }
}

/// Convergence report from [`newton_solve`].
#[derive(Debug, Clone, Copy)]
pub struct NewtonReport {
    /// Newton iterations used.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual_norm: f64,
}

/// Solves `r(x) = 0` by damped Newton, updating `x` in place.
///
/// Damping: when a full step does not reduce `‖r‖₂`, the step is halved
/// (down to [`NewtonOptions::min_damping`]) before being accepted anyway —
/// the standard SPICE-style heuristic that tolerates mild residual growth
/// far from the solution while preventing divergence.
///
/// Convergence is declared when the weighted update norm
/// `wrms(Δx; atol, rtol)` drops below 1.
///
/// # Errors
///
/// * [`TransimError::SingularJacobian`] when factorisation fails;
/// * [`TransimError::NewtonFailed`] when the iteration budget is spent.
pub fn newton_solve<S: NonlinearSystem + ?Sized>(
    sys: &S,
    x: &mut [f64],
    opts: &NewtonOptions,
) -> Result<NewtonReport, TransimError> {
    let n = sys.dim();
    assert_eq!(x.len(), n, "newton: x length mismatch");
    let mut r = vec![0.0; n];
    // The dense stamp buffer is allocated lazily: on the sparse path of a
    // large system (the very case the sparse backends exist for) the
    // O(n²) matrix is never touched.
    let mut jac: Option<DMat> = None;
    let mut trip = Triplets::new(n, n);
    let mut trial = vec![0.0; n];
    let mut r_trial = vec![0.0; n];

    sys.residual(x, &mut r);
    let mut rnorm = norm2(&r);

    for iter in 1..=opts.max_iter {
        // Sparse backends prefer a triplet-assembled Jacobian; dense (or
        // systems without sparse assembly) stamp the full matrix.
        let use_triplets = !matches!(opts.linear_solver, LinearSolverKind::Dense) && {
            trip.clear();
            sys.jacobian_triplets(x, &mut trip)
        };
        let factored = if use_triplets {
            FactoredJacobian::factor_matrix(&NewtonMatrix::Triplets(&trip), opts.linear_solver)
        } else {
            let jac = jac.get_or_insert_with(|| DMat::zeros(n, n));
            sys.jacobian(x, jac);
            FactoredJacobian::factor_matrix(&NewtonMatrix::Dense(jac), opts.linear_solver)
        }
        .map_err(|_| TransimError::SingularJacobian { at_time: f64::NAN })?;
        // dx = -J⁻¹ r
        let mut dx = r.clone();
        factored
            .solve_in_place(&mut dx)
            .map_err(|_| TransimError::SingularJacobian { at_time: f64::NAN })?;
        for v in dx.iter_mut() {
            *v = -*v;
        }

        // Damped line search on ‖r‖₂.
        let mut lambda = 1.0;
        loop {
            for i in 0..n {
                trial[i] = x[i] + lambda * dx[i];
            }
            sys.residual(&trial, &mut r_trial);
            let rt = norm2(&r_trial);
            if rt.is_finite() && (rt <= rnorm || lambda <= opts.min_damping) {
                x.copy_from_slice(&trial);
                r.copy_from_slice(&r_trial);
                rnorm = rt;
                break;
            }
            lambda *= 0.5;
        }

        let update_norm = wrms_norm(
            &dx.iter().map(|v| v * lambda).collect::<Vec<_>>(),
            x,
            opts.abstol,
            opts.reltol,
        );
        if update_norm <= 1.0 && rnorm.is_finite() {
            return Ok(NewtonReport {
                iterations: iter,
                residual_norm: rnorm,
            });
        }
    }

    Err(TransimError::NewtonFailed {
        iterations: opts.max_iter,
        residual: rnorm,
        at_time: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// r(x) = x² − 4 (root at ±2).
    struct Quadratic;

    impl NonlinearSystem for Quadratic {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] - 4.0;
        }
        fn jacobian(&self, x: &[f64], out: &mut DMat) {
            out[(0, 0)] = 2.0 * x[0];
        }
    }

    /// 2-d Rosenbrock-style system with root (1, 1).
    struct TwoDim;

    impl NonlinearSystem for TwoDim {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] + x[1] * x[1] - 2.0;
            out[1] = x[0] - x[1];
        }
        fn jacobian(&self, x: &[f64], out: &mut DMat) {
            out[(0, 0)] = 2.0 * x[0];
            out[(0, 1)] = 2.0 * x[1];
            out[(1, 0)] = 1.0;
            out[(1, 1)] = -1.0;
        }
    }

    #[test]
    fn scalar_quadratic_converges() {
        let mut x = vec![3.0];
        let rep = newton_solve(&Quadratic, &mut x, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!(rep.iterations < 10);
    }

    #[test]
    fn negative_start_finds_negative_root() {
        let mut x = vec![-5.0];
        newton_solve(&Quadratic, &mut x, &NewtonOptions::default()).unwrap();
        assert!((x[0] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_dim_system() {
        let mut x = vec![2.0, 0.5];
        newton_solve(&TwoDim, &mut x, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_backends_reach_the_same_root() {
        for kind in [
            LinearSolverKind::SparseLu,
            LinearSolverKind::gmres_default(),
        ] {
            let mut x = vec![2.0, 0.5];
            let opts = NewtonOptions {
                linear_solver: kind,
                ..Default::default()
            };
            newton_solve(&TwoDim, &mut x, &opts).unwrap();
            assert!((x[0] - 1.0).abs() < 1e-9, "{}", kind.label());
            assert!((x[1] - 1.0).abs() < 1e-9, "{}", kind.label());
        }
    }

    #[test]
    fn triplet_jacobian_path_is_used_when_offered() {
        use std::cell::Cell;
        /// TwoDim with a sparse Jacobian and a call counter proving the
        /// sparse path ran instead of the dense stamp.
        struct SparseTwoDim {
            triplet_calls: Cell<usize>,
        }
        impl NonlinearSystem for SparseTwoDim {
            fn dim(&self) -> usize {
                2
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                TwoDim.residual(x, out);
            }
            fn jacobian(&self, _x: &[f64], _out: &mut DMat) {
                panic!("dense jacobian must not be called on the sparse path");
            }
            fn jacobian_triplets(&self, x: &[f64], out: &mut Triplets) -> bool {
                self.triplet_calls.set(self.triplet_calls.get() + 1);
                out.push(0, 0, 2.0 * x[0]);
                out.push(0, 1, 2.0 * x[1]);
                out.push(1, 0, 1.0);
                out.push(1, 1, -1.0);
                true
            }
        }
        let sys = SparseTwoDim {
            triplet_calls: Cell::new(0),
        };
        let mut x = vec![2.0, 0.5];
        let opts = NewtonOptions {
            linear_solver: LinearSolverKind::SparseLu,
            ..Default::default()
        };
        newton_solve(&sys, &mut x, &opts).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!(sys.triplet_calls.get() > 0);
    }

    #[test]
    fn singular_jacobian_detected() {
        struct Flat;
        impl NonlinearSystem for Flat {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, _x: &[f64], out: &mut [f64]) {
                out[0] = 1.0;
            }
            fn jacobian(&self, _x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 0.0;
            }
        }
        let mut x = vec![0.0];
        assert!(matches!(
            newton_solve(&Flat, &mut x, &NewtonOptions::default()),
            Err(TransimError::SingularJacobian { .. })
        ));
    }

    #[test]
    fn iteration_budget_respected() {
        // A system whose Newton steps cycle: r = atan-like flat tail.
        struct Hard;
        impl NonlinearSystem for Hard {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0].atan() + 2.0; // no root: atan ∈ (-π/2, π/2)
            }
            fn jacobian(&self, x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 1.0 / (1.0 + x[0] * x[0]);
            }
        }
        let mut x = vec![0.0];
        let opts = NewtonOptions {
            max_iter: 8,
            ..Default::default()
        };
        assert!(matches!(
            newton_solve(&Hard, &mut x, &opts),
            Err(TransimError::NewtonFailed { iterations: 8, .. })
        ));
    }

    #[test]
    fn damping_rescues_overshoot() {
        // Start far away where full Newton overshoots on x³-1.
        struct Cubic;
        impl NonlinearSystem for Cubic {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0].powi(3) - 1.0;
            }
            fn jacobian(&self, x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 3.0 * x[0] * x[0];
            }
        }
        let mut x = vec![0.01];
        newton_solve(&Cubic, &mut x, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
    }
}
