//! Damped Newton–Raphson — a thin adapter over the shared
//! `crates/newtonkit` engine.
//!
//! The hand-rolled loop that used to live here (and its siblings in the
//! MPDE, WaMPDE, and shooting crates) is now one implementation:
//! [`newtonkit::NewtonEngine`]. This module keeps the historical
//! `transim` surface as re-exports plus the [`TransimError`] mapping:
//!
//! * [`NonlinearSystem`] *is* [`newtonkit::NewtonSystem`] — same
//!   `dim`/`residual`/`jacobian`/`jacobian_triplets` shape, now with
//!   optional scaling/damping hooks (neutral defaults).
//! * [`NewtonOptions`] *is* [`newtonkit::NewtonPolicy`].
//!   **Breaking note:** the old `min_damping: f64` field became the
//!   [`newtonkit::Damping::LineSearch`] variant's `min_lambda` (same
//!   default, 1/64) under the new `damping` field; the policy also gains
//!   `residual_tol` (None), and `reuse_symbolic` (true) — with
//!   `..Default::default()` struct updates, existing call sites keep
//!   compiling and keep their historical defaults
//!   (`max_iter = 50`, `abstol = 1e-12`, `reltol = 1e-9`).
//! * [`NewtonReport`] *is* [`newtonkit::NewtonStats`] — `iterations` and
//!   `residual_norm` as before, plus factorisation/reuse counters.
//!
//! [`newton_solve`] remains the one-shot entry point. Loop-heavy callers
//! (`run_transient`, `dc_operating_point`) hold a
//! [`newtonkit::NewtonEngine`] across steps instead, so sparse-LU
//! factorisations reuse the cached symbolic analysis across the whole
//! run, not just within one solve.

use crate::error::TransimError;

pub use newtonkit::{
    Damping, NewtonPolicy as NewtonOptions, NewtonStats as NewtonReport,
    NewtonSystem as NonlinearSystem,
};

/// Maps the solver-agnostic engine failure into [`TransimError`] (time
/// tag NaN; time-stepping callers re-tag with the failing step time).
pub(crate) fn map_newton_err(e: newtonkit::NewtonError) -> TransimError {
    match e {
        newtonkit::NewtonError::Singular { .. } => {
            TransimError::SingularJacobian { at_time: f64::NAN }
        }
        newtonkit::NewtonError::NoConvergence {
            iterations,
            residual,
        } => TransimError::NewtonFailed {
            iterations,
            residual,
            at_time: f64::NAN,
        },
        newtonkit::NewtonError::BadInput(msg) => TransimError::BadInput(msg),
    }
}

/// Solves `r(x) = 0` by damped Newton, updating `x` in place — the
/// historical `transim` entry point, now delegating to the shared
/// [`newtonkit`] engine (symbolic reuse spans the iterations of this
/// solve; hold a [`newtonkit::NewtonEngine`] yourself to span more).
///
/// # Errors
///
/// * [`TransimError::SingularJacobian`] when factorisation fails;
/// * [`TransimError::NewtonFailed`] when the iteration budget is spent.
pub fn newton_solve<S: NonlinearSystem + ?Sized>(
    sys: &S,
    x: &mut [f64],
    opts: &NewtonOptions,
) -> Result<NewtonReport, TransimError> {
    newtonkit::newton_solve(sys, x, opts).map_err(map_newton_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::DMat;

    /// r(x) = x² − 4 (root at ±2) — the historical smoke test, now
    /// exercising the re-exported engine and the error mapping.
    struct Quadratic;

    impl NonlinearSystem for Quadratic {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] - 4.0;
        }
        fn jacobian(&self, x: &[f64], out: &mut DMat) {
            out[(0, 0)] = 2.0 * x[0];
        }
    }

    #[test]
    fn re_exported_engine_converges() {
        let mut x = vec![3.0];
        let rep = newton_solve(&Quadratic, &mut x, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!(rep.iterations < 10);
    }

    #[test]
    fn historical_defaults_preserved() {
        let o = NewtonOptions::default();
        assert_eq!(o.max_iter, 50);
        assert_eq!(o.abstol, 1e-12);
        assert_eq!(o.reltol, 1e-9);
        assert_eq!(
            o.damping,
            Damping::LineSearch {
                min_lambda: 1.0 / 64.0
            }
        );
        assert!(o.reuse_symbolic);
    }

    #[test]
    fn budget_error_maps_to_newton_failed() {
        struct Hard;
        impl NonlinearSystem for Hard {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0].atan() + 2.0; // no root
            }
            fn jacobian(&self, x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 1.0 / (1.0 + x[0] * x[0]);
            }
        }
        let mut x = vec![0.0];
        let opts = NewtonOptions {
            max_iter: 8,
            ..Default::default()
        };
        assert!(matches!(
            newton_solve(&Hard, &mut x, &opts),
            Err(TransimError::NewtonFailed { iterations: 8, .. })
        ));
    }

    #[test]
    fn singular_maps_to_singular_jacobian() {
        struct Flat;
        impl NonlinearSystem for Flat {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, _x: &[f64], out: &mut [f64]) {
                out[0] = 1.0;
            }
            fn jacobian(&self, _x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 0.0;
            }
        }
        let mut x = vec![0.0];
        assert!(matches!(
            newton_solve(&Flat, &mut x, &NewtonOptions::default()),
            Err(TransimError::SingularJacobian { .. })
        ));
    }
}
