//! Air-damped MEMS VCO: envelope over 3 control periods; check settling + range.
use circuitdae::circuits::{self, MemsVcoConfig};
use shooting::{oscillator_steady_state, ShootingOptions};
use wampde::*;

fn main() {
    let cfg = MemsVcoConfig::paper_air();
    let dae = circuits::mems_vco(cfg);
    let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default()).unwrap();
    let opts = WampdeOptions {
        harmonics: 9,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &opts);
    let t0 = std::time::Instant::now();
    let env = solve_envelope(&dae, &init, 3e-3, &opts).unwrap();
    println!(
        "steps={} rejected={} time={:?}",
        env.stats.steps,
        env.stats.rejected,
        t0.elapsed()
    );
    let (lo, hi) = env.frequency_range();
    println!("frequency range: {:.3} - {:.3} MHz", lo / 1e6, hi / 1e6);
    // print every ~0.1ms for shape inspection
    for i in 0..=30 {
        let t = i as f64 * 1e-4;
        print!("({:.1}ms {:.3}) ", t * 1e3, env.omega_at(t) / 1e6);
    }
    println!();
    println!("phi(3ms) = {} cycles", env.phi_at(3e-3));
}
