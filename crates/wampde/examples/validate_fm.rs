//! Quick validation: vacuum MEMS VCO, WaMPDE envelope vs direct transient.
use circuitdae::circuits::{self, MemsVcoConfig};
use circuitdae::Dae;
use shooting::{oscillator_steady_state, ShootingOptions};
use transim::*;
use wampde::*;

fn main() {
    let cfg = MemsVcoConfig::paper_vacuum();
    let dae = circuits::mems_vco(cfg);
    let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default()).unwrap();
    println!("f0 = {:.1} kHz", orbit.frequency() / 1e3);

    let opts = WampdeOptions {
        harmonics: 9,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &opts);
    let t_end = 80e-6; // two control periods
    let t0 = std::time::Instant::now();
    let env = solve_envelope(&dae, &init, t_end, &opts).unwrap();
    let wampde_time = t0.elapsed();
    let (lo, hi) = env.frequency_range();
    println!(
        "WaMPDE: steps={} rejected={} newton={} time={:?}",
        env.stats.steps, env.stats.rejected, env.stats.newton_iters, wampde_time
    );
    println!(
        "frequency range: {:.3} - {:.3} MHz (ratio {:.2})",
        lo / 1e6,
        hi / 1e6,
        hi / lo
    );

    // Transient reference from the same initial state.
    // Initial condition: state at t1 = phi(0) = 0 of the initial samples -> first sample row.
    let x0: Vec<f64> = env.states[0][0..dae.dim()].to_vec();
    let t0 = std::time::Instant::now();
    let tr = run_transient(
        &dae,
        &x0,
        0.0,
        t_end,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol: 1e-8,
                atol: 1e-12,
                dt_init: 1e-9,
                dt_min: 0.0,
                dt_max: 5e-8,
            },
            ..Default::default()
        },
    )
    .unwrap();
    let tr_time = t0.elapsed();
    println!("transient: steps={} time={:?}", tr.stats.steps, tr_time);

    // Compare waveforms over [0, 20us] and around 60us.
    let mut max_err_early = 0.0f64;
    for i in 0..2000 {
        let t = i as f64 * 1e-8; // up to 20us
        let w = env.reconstruct(0, &[t])[0];
        let r = tr.sample(0, t);
        max_err_early = max_err_early.max((w - r).abs());
    }
    let mut max_err_late = 0.0f64;
    for i in 0..1000 {
        let t = 60e-6 + i as f64 * 1e-8;
        let w = env.reconstruct(0, &[t])[0];
        let r = tr.sample(0, t);
        max_err_late = max_err_late.max((w - r).abs());
    }
    println!("max |wampde - transient| early = {max_err_early:.4} V, late = {max_err_late:.4} V (amplitude ~2V)");
}
