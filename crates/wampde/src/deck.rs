//! Deck adapter: runs a [`circuitdae::WampdeSpec`] directive.

use crate::envelope::solve_envelope;
use crate::error::WampdeError;
use crate::init::WampdeInit;
use crate::options::{T2StepControl, WampdeOptions};
use crate::result::EnvelopeResult;
use circuitdae::{CircuitDae, Dae, WampdeSpec};
use shooting::{
    find_periodic_orbit, oscillator_steady_state, PeriodicOrbit, ShootingOptions, ShootingWarmStart,
};

/// Runs a `.wampde` directive end to end: freezes the circuit's waveforms
/// at `t = 0`, shoots for the unforced periodic orbit (the paper's
/// natural initial condition, §4.1), phase-aligns it, and tracks the
/// envelope of the *driven* circuit to `t_stop`.
///
/// This is the one-call path the deck/sweep subsystem uses; the manual
/// orbit → [`WampdeInit::from_orbit`] → [`solve_envelope`] pipeline stays
/// available for callers that need custom initial conditions.
///
/// # Errors
///
/// [`WampdeError::BadInput`] when `phase_var` is out of range or the
/// shooting initialisation fails (reporting the underlying cause),
/// otherwise see [`solve_envelope`].
pub fn run_wampde_spec(dae: &CircuitDae, spec: &WampdeSpec) -> Result<EnvelopeResult, WampdeError> {
    run_wampde_spec_warm(dae, spec, None).map(|(env, _)| env)
}

/// [`run_wampde_spec`] with a continuation warm start: when `warm`
/// holds the unforced orbit of a neighbouring grid point, the shooting
/// initialisation starts directly from it instead of running the full
/// DC → kick → warm-up → settle pipeline, falling back to the cold
/// pipeline if the neighbour is too far away to converge. Also returns
/// this point's converged unforced orbit so the caller can chain it
/// into the next point.
///
/// # Errors
///
/// As [`run_wampde_spec`].
pub fn run_wampde_spec_warm(
    dae: &CircuitDae,
    spec: &WampdeSpec,
    warm: Option<&ShootingWarmStart>,
) -> Result<(EnvelopeResult, PeriodicOrbit), WampdeError> {
    if spec.phase_var >= dae.dim() {
        return Err(WampdeError::BadInput(format!(
            "phase_var {} out of range (dim = {})",
            spec.phase_var,
            dae.dim()
        )));
    }
    let unforced = dae.frozen_at(0.0);
    let shoot_opts = ShootingOptions {
        steps_per_period: spec.shooting_steps,
        phase_var: spec.phase_var,
        linear_solver: spec.solver,
        ..Default::default()
    };
    let warm_orbit = warm
        .filter(|seed| seed.x0.len() == dae.dim() && seed.period > 0.0)
        .and_then(|seed| find_periodic_orbit(&unforced, &seed.x0, seed.period, &shoot_opts).ok());
    let orbit = match warm_orbit {
        Some(orbit) => orbit,
        None => oscillator_steady_state(&unforced, &shoot_opts)
            .map_err(|e| WampdeError::BadInput(format!("shooting initialisation failed: {e}")))?,
    };
    // The spec's step keys select fixed (`dt=`) or LTE-adaptive `t2`
    // stepping; the scheme rides along from `integrator=`.
    let step = if spec.dt > 0.0 {
        T2StepControl::Fixed(spec.dt)
    } else {
        T2StepControl::Adaptive {
            rtol: spec.rtol,
            atol: spec.atol,
            dt_init: 0.0,
            dt_min: spec.dt_min,
            dt_max: spec.dt_max,
        }
    };
    let opts = WampdeOptions {
        harmonics: spec.harmonics,
        phase_var: spec.phase_var,
        linear_solver: spec.solver,
        integrator: spec.integrator,
        step,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &opts);
    let env = solve_envelope(dae, &init, spec.t_stop, &opts)?;
    Ok((env, orbit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::circuits::{self, MemsVcoConfig};

    #[test]
    fn wampde_spec_runs_constant_control_vco() {
        // With a DC control the local frequency must stay near the
        // unforced 0.75 MHz for the whole (short) run.
        let dae = circuits::mems_vco(MemsVcoConfig::constant(1.5));
        let spec = WampdeSpec {
            harmonics: 4,
            shooting_steps: 256,
            ..WampdeSpec::new(1.0e-6)
        };
        let env = run_wampde_spec(&dae, &spec).unwrap();
        assert!(env.stats.steps > 0);
        let (lo, hi) = env.frequency_range();
        assert!((lo - 0.75e6).abs() / 0.75e6 < 0.05, "lo = {lo}");
        assert!((hi - 0.75e6).abs() / 0.75e6 < 0.05, "hi = {hi}");
    }

    #[test]
    fn out_of_range_phase_var_rejected() {
        let dae = circuits::mems_vco(MemsVcoConfig::constant(1.5));
        let spec = WampdeSpec {
            harmonics: 4,
            phase_var: 9, // dim is 4
            shooting_steps: 256,
            ..WampdeSpec::new(1.0e-6)
        };
        assert!(matches!(
            run_wampde_spec(&dae, &spec),
            Err(WampdeError::BadInput(_))
        ));
    }
}
