//! Envelope (initial-value) WaMPDE solver.
//!
//! Discretises eq. (19)–(20) of the paper by time-stepping along the slow
//! axis `t2`: at each step a bordered nonlinear system in the `n·N0`
//! collocation samples plus the local frequency `ω(t2)` is solved by
//! Newton. This is the engine behind the paper's VCO experiments
//! (Figures 7–12): it tracks frequency-modulated envelopes taking `t2`
//! steps on the *modulation* time scale, independent of how many fast
//! carrier cycles elapse.

use crate::error::WampdeError;
use crate::init::WampdeInit;
use crate::linsolve::colloc_parts;
use crate::options::{OmegaMode, WampdeOptions};
use crate::result::{EnvelopeResult, EnvelopeStats};
use circuitdae::Dae;
use hb::Colloc;
use newtonkit::{NewtonEngine, NewtonError, NewtonPolicy, NewtonStats, NewtonSystem};
use numkit::vecops::CompensatedSum;
use numkit::DMat;
use std::cell::RefCell;
use timekit::{History, StepVerdict};

/// Weighted update norm with *block* scaling: collocation samples are
/// weighted by the block's maximum magnitude (a per-entry weight would
/// demand machine-exact solves at zero crossings), the frequency unknown
/// by its own magnitude.
pub(crate) fn block_update_norm(
    dz: &[f64],
    x: &[f64],
    omega: Option<f64>,
    abstol: f64,
    reltol: f64,
) -> f64 {
    let len = x.len();
    let x_scale = x.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
    let wx = abstol + reltol * x_scale;
    let mut acc = 0.0;
    for &d in &dz[..len] {
        let e = d / wx;
        acc += e * e;
    }
    let mut count = len;
    if let Some(om) = omega {
        let womega = abstol + reltol * om.abs().max(1e-300);
        let e = dz[len] / womega;
        acc += e * e;
        count += 1;
    }
    (acc / count as f64).sqrt()
}

/// Scratch buffers for residual evaluation.
struct Work {
    q: Vec<f64>,
    dq: Vec<f64>,
    f: Vec<f64>,
    b: Vec<f64>,
}

impl Work {
    fn new(len: usize, n: usize) -> Self {
        Work {
            q: vec![0.0; len],
            dq: vec![0.0; len],
            f: vec![0.0; len],
            b: vec![0.0; n],
        }
    }
}

/// Evaluates the "instantaneous" WaMPDE operator
/// `g(X, ω, t2) = ω·D·q(X) + f(X) − b(t2)` (stacked, sample-major).
fn eval_g<D: Dae + ?Sized>(
    dae: &D,
    colloc: &Colloc,
    x: &[f64],
    omega: f64,
    t2: f64,
    w: &mut Work,
    out: &mut [f64],
) {
    colloc.eval_q_all(dae, x, &mut w.q);
    colloc.apply_diff(&w.q, &mut w.dq);
    colloc.eval_f_all(dae, x, &mut w.f);
    dae.eval_b(t2, &mut w.b);
    for s in 0..colloc.n0 {
        for i in 0..colloc.n {
            let k = colloc.idx(s, i);
            out[k] = omega * w.dq[k] + w.f[k] - w.b[i];
        }
    }
}

/// Solves the envelope (initial-value) WaMPDE from `t2 = 0` to `t2_end`.
///
/// `init` supplies one warped period of samples and the starting local
/// frequency — typically [`WampdeInit::from_orbit`] of the unforced
/// oscillator (the paper's "natural initial condition").
///
/// # Errors
///
/// See [`WampdeError`]; notably `DegeneratePhase` when the configured
/// phase variable does not oscillate, and `StepTooSmall`/`NewtonFailed`
/// when the slow-time stepping cannot proceed.
pub fn solve_envelope<D: Dae + ?Sized>(
    dae: &D,
    init: &WampdeInit,
    t2_end: f64,
    opts: &WampdeOptions,
) -> Result<EnvelopeResult, WampdeError> {
    let n = dae.dim();
    let colloc = Colloc::new(n, opts.harmonics);
    let len = colloc.len();
    if init.n0() != colloc.n0 {
        return Err(WampdeError::BadInput(format!(
            "init has {} samples, options require N0 = {}",
            init.n0(),
            colloc.n0
        )));
    }
    if init.samples.iter().any(|r| r.len() != n) {
        return Err(WampdeError::BadInput(
            "init sample width != dae dimension".into(),
        ));
    }
    // `partial_cmp` keeps the NaN-rejecting behavior of `!(v > 0.0)`.
    if t2_end.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(WampdeError::BadInput("t2_end must be positive".into()));
    }

    let free_omega = matches!(opts.omega_mode, OmegaMode::Free);
    let mut omega = match opts.omega_mode {
        OmegaMode::Free => init.freq_hz,
        OmegaMode::Frozen(w) => w,
    };
    if omega.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(WampdeError::BadInput(
            "initial frequency must be positive".into(),
        ));
    }

    let mut x = init.stacked();

    // Phase machinery (Free mode only).
    let phase_row = if free_omega {
        let row = colloc.phase_row(opts.phase_var, opts.phase_harmonic);
        // Degeneracy check: variable k must actually carry harmonic l.
        let var = colloc.extract_var(&x, opts.phase_var);
        let series = fourier::FourierSeries::from_samples(&var);
        let c = series.coeff(opts.phase_harmonic as isize);
        let scale = var.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
        if c.abs() < 1e-8 * scale {
            return Err(WampdeError::DegeneratePhase {
                var: opts.phase_var,
                harmonic: opts.phase_harmonic,
            });
        }
        Some(row)
    } else {
        None
    };

    let mut ctl = opts
        .step
        .resolve(t2_end, opts.integrator.order())
        .map_err(WampdeError::BadInput)?;

    let mut work = Work::new(len, n);
    let mut q_cur = vec![0.0; len];
    colloc.eval_q_all(dae, &x, &mut q_cur);
    let mut g_prev = vec![0.0; len];
    eval_g(dae, &colloc, &x, omega, 0.0, &mut work, &mut g_prev);

    // One Newton engine for the whole envelope: the bordered step
    // Jacobian keeps its sparsity pattern along t2, so sparse-LU pays
    // for symbolic analysis once and refactors numerically thereafter.
    let mut newton_engine = NewtonEngine::new();

    // Result records.
    let mut t2s = vec![0.0];
    let mut omegas = vec![omega];
    let mut phis = vec![0.0];
    let mut states = vec![x.clone()];
    let mut stats = EnvelopeStats::default();
    let mut phi_acc = CompensatedSum::new();

    // Shared predictor/BDF2 history: z is the stacked X (+ ω in Free
    // mode), q the collocation charge vector.
    let mut history = History::new(3);
    history.push(0.0, pack(&x, omega, free_omega), q_cur.clone());

    let mut t2 = 0.0;
    let max_attempts = ctl.attempt_budget(t2_end);
    let mut qlin = vec![0.0; len];

    while t2 < t2_end - 1e-15 * t2_end {
        if stats.steps + stats.rejected > max_attempts {
            return Err(WampdeError::StepTooSmall {
                at_t2: t2,
                step: ctl.h(),
            });
        }
        let h_try = ctl.propose(t2, t2_end);
        let t_new = t2 + h_try;
        let step_span = obskit::span("time-step");
        step_span.attr("t2", t_new);
        step_span.attr("h", h_try);

        // --- Newton solve of the step system. ---
        let mut x_new = x.clone();
        let mut omega_new = omega;
        // Predictor from history (helps both Newton and LTE control).
        let predicted = history.predict(t_new);
        if let Some(pred) = &predicted {
            x_new.copy_from_slice(&pred[..len]);
            if free_omega {
                omega_new = pred[len];
            }
        }

        // Scheme coefficients for this step:
        //   r = a0h·q(X) + qlin + θ·g(X,ω,t_new) + (1−θ)·g_prev.
        let coeffs = opts.integrator.step_coeffs(h_try, &history, &mut qlin);

        let newton = newton_step(
            &mut newton_engine,
            dae,
            &colloc,
            opts,
            coeffs.a0h,
            coeffs.theta,
            &qlin,
            t_new,
            &g_prev,
            phase_row.as_deref(),
            &mut x_new,
            &mut omega_new,
        );
        let nstats = newton_engine.stats();
        stats.factorisations += nstats.factorisations;
        stats.symbolic_reuses += nstats.symbolic_reuses;

        let newton_ok = newton.is_ok();
        let accept = match newton {
            Ok(rep) => {
                stats.newton_iters += rep.iterations;
                match &predicted {
                    Some(pred) if ctl.adaptive() => {
                        let z_new = pack(&x_new, omega_new, free_omega);
                        let err = ctl.lte(&z_new, pred);
                        ctl.evaluate(h_try, err) == StepVerdict::Accept
                    }
                    // Fixed step, or no history yet: accept the step.
                    _ => true,
                }
            }
            Err(e) => {
                if ctl.at_min(h_try) {
                    return Err(e);
                }
                ctl.reject_failure(h_try);
                false
            }
        };

        step_span.attr("accepted", accept);
        if accept {
            // Warping-function quadrature: φ += h·(ω_old + ω_new)/2 (cycles).
            phi_acc.add(h_try * 0.5 * (omega + omega_new));
            t2 = t_new;
            x = x_new;
            omega = omega_new;
            colloc.eval_q_all(dae, &x, &mut q_cur);
            eval_g(dae, &colloc, &x, omega, t2, &mut work, &mut g_prev);
            t2s.push(t2);
            omegas.push(omega);
            phis.push(phi_acc.value());
            states.push(x.clone());
            stats.steps += 1;
            history.push(t2, pack(&x, omega, free_omega), q_cur.clone());
        } else {
            stats.rejected += 1;
            // An LTE rejection that has already been driven to the
            // minimum step cannot be satisfied; a Newton failure gets
            // one retry *at* the minimum before its error propagates.
            if newton_ok && ctl.underflowed() {
                return Err(WampdeError::StepTooSmall {
                    at_t2: t2,
                    step: ctl.h(),
                });
            }
        }
    }

    Ok(EnvelopeResult {
        n,
        n0: colloc.n0,
        t2: t2s,
        omega_hz: omegas,
        phi: phis,
        states,
        stats,
    })
}

fn pack(x: &[f64], omega: f64, free_omega: bool) -> Vec<f64> {
    let mut z = x.to_vec();
    if free_omega {
        z.push(omega);
    }
    z
}

/// One implicit `t2` step — the bordered collocation system over
/// `z = [X (, ω)]` with residual
/// `r = a0h·q(X) + qlin + θ·g(X,ω,t_new) + (1−θ)·g_prev` (plus the phase
/// row in Free mode) — as a shared-engine [`NewtonSystem`] with the
/// historical block-scaled update norm.
struct EnvelopeStepSystem<'a, D: Dae + ?Sized> {
    dae: &'a D,
    colloc: &'a Colloc,
    a0h: f64,
    theta: f64,
    qlin: &'a [f64],
    t_new: f64,
    g_prev: &'a [f64],
    phase_row: Option<&'a [f64]>,
    /// ω when the frequency is frozen (ignored in Free mode, where ω is
    /// the last unknown of `z`).
    frozen_omega: f64,
    work: RefCell<Work>,
    /// (cblocks, gblocks, omega_col) Jacobian scratch.
    jac_work: RefCell<(Vec<DMat>, Vec<DMat>, Vec<f64>)>,
}

impl<D: Dae + ?Sized> EnvelopeStepSystem<'_, D> {
    fn omega_of(&self, z: &[f64]) -> f64 {
        match self.phase_row {
            Some(_) => z[self.colloc.len()],
            None => self.frozen_omega,
        }
    }

    /// Fills the Jacobian scratch (per-sample C/G blocks and the θ·D·q
    /// frequency column) at the iterate.
    fn fill_jac_work(&self, z: &[f64]) {
        let n = self.colloc.n;
        let (cblocks, gblocks, omega_col) = &mut *self.jac_work.borrow_mut();
        if cblocks.len() != self.colloc.n0 {
            *cblocks = (0..self.colloc.n0).map(|_| DMat::zeros(n, n)).collect();
            *gblocks = (0..self.colloc.n0).map(|_| DMat::zeros(n, n)).collect();
        }
        for s in 0..self.colloc.n0 {
            let xs = &z[s * n..(s + 1) * n];
            self.dae.jac_q(xs, &mut cblocks[s]);
            self.dae.jac_f(xs, &mut gblocks[s]);
        }
        let work = &mut *self.work.borrow_mut();
        self.colloc
            .eval_q_all(self.dae, &z[..self.colloc.len()], &mut work.q);
        self.colloc.apply_diff(&work.q, &mut work.dq);
        omega_col.resize(self.colloc.len(), 0.0);
        for (slot, v) in omega_col.iter_mut().zip(work.dq.iter()) {
            *slot = self.theta * v;
        }
    }
}

impl<D: Dae + ?Sized> NewtonSystem for EnvelopeStepSystem<'_, D> {
    fn dim(&self) -> usize {
        self.colloc.len() + usize::from(self.phase_row.is_some())
    }

    fn residual(&self, z: &[f64], out: &mut [f64]) {
        let (len, n) = (self.colloc.len(), self.colloc.n);
        let omega = self.omega_of(z);
        let work = &mut *self.work.borrow_mut();
        self.colloc.eval_q_all(self.dae, &z[..len], &mut work.q);
        self.colloc.apply_diff(&work.q, &mut work.dq);
        self.colloc.eval_f_all(self.dae, &z[..len], &mut work.f);
        self.dae.eval_b(self.t_new, &mut work.b);
        for s in 0..self.colloc.n0 {
            for i in 0..n {
                let k = self.colloc.idx(s, i);
                let g_inst = omega * work.dq[k] + work.f[k] - work.b[i];
                out[k] = self.a0h * work.q[k]
                    + self.qlin[k]
                    + self.theta * g_inst
                    + (1.0 - self.theta) * self.g_prev[k];
            }
        }
        if let Some(row) = self.phase_row {
            out[len] = row.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
        }
    }

    fn jacobian(&self, z: &[f64], out: &mut DMat) {
        self.fill_jac_work(z);
        let jw = self.jac_work.borrow();
        let (cblocks, gblocks, omega_col) = &*jw;
        colloc_parts(
            self.colloc,
            cblocks,
            gblocks,
            self.a0h,
            self.theta,
            self.omega_of(z),
            self.phase_row.map(|row| (row, omega_col.as_slice())),
        )
        .assemble_dense_into(out);
    }

    fn jacobian_triplets(&self, z: &[f64], out: &mut sparsekit::Triplets) -> bool {
        self.fill_jac_work(z);
        let jw = self.jac_work.borrow();
        let (cblocks, gblocks, omega_col) = &*jw;
        colloc_parts(
            self.colloc,
            cblocks,
            gblocks,
            self.a0h,
            self.theta,
            self.omega_of(z),
            self.phase_row.map(|row| (row, omega_col.as_slice())),
        )
        .push_triplets(out);
        true
    }

    fn update_norm(&self, dx_scaled: &[f64], z: &[f64], abstol: f64, reltol: f64) -> f64 {
        let len = self.colloc.len();
        block_update_norm(
            dx_scaled,
            &z[..len],
            self.phase_row.is_some().then(|| z[len]),
            abstol,
            reltol,
        )
    }
}

/// Newton iteration for one implicit `t2` step through the shared
/// engine. Returns the per-solve stats on success.
#[allow(clippy::too_many_arguments)]
fn newton_step<D: Dae + ?Sized>(
    engine: &mut NewtonEngine,
    dae: &D,
    colloc: &Colloc,
    opts: &WampdeOptions,
    a0h: f64,
    theta: f64,
    qlin: &[f64],
    t_new: f64,
    g_prev: &[f64],
    phase_row: Option<&[f64]>,
    x: &mut [f64],
    omega: &mut f64,
) -> Result<NewtonStats, WampdeError> {
    let len = colloc.len();
    let free_omega = phase_row.is_some();
    let sys = EnvelopeStepSystem {
        dae,
        colloc,
        a0h,
        theta,
        qlin,
        t_new,
        g_prev,
        phase_row,
        frozen_omega: *omega,
        work: RefCell::new(Work::new(len, colloc.n)),
        jac_work: RefCell::new((Vec::new(), Vec::new(), Vec::new())),
    };
    let mut z = Vec::with_capacity(len + 1);
    z.extend_from_slice(x);
    if free_omega {
        z.push(*omega);
    }
    let policy = NewtonPolicy {
        linear_solver: opts.linear_solver,
        ..opts.newton
    };
    let result = engine.solve(&sys, &mut z, &policy);
    x.copy_from_slice(&z[..len]);
    if free_omega {
        *omega = z[len];
    }
    result.map_err(|e| match e {
        NewtonError::Singular { cause } => WampdeError::LinearSolve {
            at_t2: t_new,
            cause,
        },
        NewtonError::NoConvergence {
            iterations,
            residual,
        } => WampdeError::NewtonFailed {
            at_t2: t_new,
            iterations,
            residual,
        },
        NewtonError::BadInput(msg) => WampdeError::BadInput(msg),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{LinearSolverKind, T2Integrator, T2StepControl};
    use circuitdae::analytic::VanDerPol;
    use circuitdae::circuits::{self, MemsVcoConfig};
    use shooting::{oscillator_steady_state, ShootingOptions};

    fn small_opts() -> WampdeOptions {
        WampdeOptions {
            harmonics: 6,
            ..Default::default()
        }
    }

    #[test]
    fn constant_control_keeps_frequency() {
        // With DC control the VCO is in steady state: ω(t2) must stay at
        // the unforced frequency and the samples must not drift.
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let opts = WampdeOptions {
            step: T2StepControl::Fixed(2.0e-6),
            ..small_opts()
        };
        let init = WampdeInit::from_orbit(&orbit, &opts);
        let res = solve_envelope(&dae, &init, 2.0e-5, &opts).unwrap();
        let f0 = orbit.frequency();
        // ω stays within the discretisation error of the shooting value
        // (the WaMPDE's own steady frequency differs from shooting's by the
        // harmonic-truncation error of M = 6)…
        for (&t, &w) in res.t2.iter().zip(res.omega_hz.iter()) {
            assert!(
                (w - f0).abs() / f0 < 1e-2,
                "t2={t}: omega {w} drifted from {f0}"
            );
        }
        // …and once settled onto the discrete steady state it is *flat*.
        let mid = res.omega_hz[res.omega_hz.len() / 2];
        let last = *res.omega_hz.last().unwrap();
        assert!(
            (last - mid).abs() / mid < 1e-6,
            "omega not settled: {mid} vs {last}"
        );
        // Samples stay near the initial periodic solution.
        let first = &res.states[0];
        let last_state = res.states.last().unwrap();
        let drift = first
            .iter()
            .zip(last_state.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(drift < 0.1, "sample drift {drift}");
    }

    #[test]
    fn unforced_vdp_envelope_stays_put() {
        let vdp = VanDerPol::unforced(0.5);
        let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();
        // Backward Euler settles onto the discrete fixed point fastest
        // (BDF2's parasitic root decays the initial-condition error more
        // slowly; both converge to the same point — see below).
        let opts = WampdeOptions {
            step: T2StepControl::Fixed(0.5),
            integrator: T2Integrator::BackwardEuler,
            ..small_opts()
        };
        let init = WampdeInit::from_orbit(&orbit, &opts);
        let res = solve_envelope(&vdp, &init, 20.0, &opts).unwrap();
        let f0 = orbit.frequency();
        let (lo, hi) = res.frequency_range();
        assert!(
            (lo - f0).abs() / f0 < 1e-2 && (hi - f0).abs() / f0 < 1e-2,
            "range ({lo}, {hi}) vs shooting {f0}"
        );
        // Settled flatness over the final quarter of the run.
        let q3 = res.omega_hz[res.omega_hz.len() * 3 / 4];
        let last = *res.omega_hz.last().unwrap();
        assert!((last - q3).abs() / q3 < 1e-6, "not settled: {q3} vs {last}");
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let base = WampdeOptions {
            step: T2StepControl::Fixed(2.0e-6),
            harmonics: 5,
            ..Default::default()
        };
        let init = WampdeInit::from_orbit(&orbit, &base);
        let dense = solve_envelope(&dae, &init, 1.0e-5, &base).unwrap();
        let sparse_opts = WampdeOptions {
            linear_solver: LinearSolverKind::SparseLu,
            ..base
        };
        let sparse = solve_envelope(&dae, &init, 1.0e-5, &sparse_opts).unwrap();
        for (a, b) in dense.omega_hz.iter().zip(sparse.omega_hz.iter()) {
            assert!((a - b).abs() / a < 1e-9);
        }
    }

    #[test]
    fn all_backends_agree_on_lc_vco_envelope() {
        // The paper's basic LC VCO: dense, sparse-LU, and GMRES+ILU(0)
        // envelopes must agree on ω(t2) to tight tolerance.
        let dae = circuits::lc_vco();
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let base = WampdeOptions {
            step: T2StepControl::Fixed(2.0e-6),
            harmonics: 5,
            ..Default::default()
        };
        let init = WampdeInit::from_orbit(&orbit, &base);
        let dense = solve_envelope(&dae, &init, 1.0e-5, &base).unwrap();
        for kind in [
            LinearSolverKind::SparseLu,
            LinearSolverKind::gmres_default(),
        ] {
            let opts = WampdeOptions {
                linear_solver: kind,
                ..base
            };
            let other = solve_envelope(&dae, &init, 1.0e-5, &opts).unwrap();
            assert_eq!(dense.omega_hz.len(), other.omega_hz.len());
            for (a, b) in dense.omega_hz.iter().zip(other.omega_hz.iter()) {
                assert!((a - b).abs() / a < 1e-9, "{}: {a} vs {b}", kind.label());
            }
        }
    }

    #[test]
    fn phi_is_monotone_and_consistent() {
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let opts = WampdeOptions {
            step: T2StepControl::Fixed(1.0e-6),
            ..small_opts()
        };
        let init = WampdeInit::from_orbit(&orbit, &opts);
        let res = solve_envelope(&dae, &init, 1.0e-5, &opts).unwrap();
        for w in res.phi.windows(2) {
            assert!(w[1] > w[0]);
        }
        // φ(T) ≈ f0·T for constant frequency.
        let expect = orbit.frequency() * 1.0e-5;
        let got = *res.phi.last().unwrap();
        assert!((got - expect).abs() / expect < 1e-3, "{got} vs {expect}");
    }

    #[test]
    fn bad_inputs_rejected() {
        let vdp = VanDerPol::unforced(0.5);
        let opts = small_opts();
        let bad_n0 = WampdeInit::from_samples(vec![vec![0.0, 0.0]; 3], 1.0);
        assert!(solve_envelope(&vdp, &bad_n0, 1.0, &opts).is_err());
        let bad_width = WampdeInit::from_samples(vec![vec![0.0]; opts.n0()], 1.0);
        assert!(solve_envelope(&vdp, &bad_width, 1.0, &opts).is_err());
        let flat = WampdeInit::from_samples(vec![vec![0.0, 0.0]; opts.n0()], 1.0);
        // Flat initial data → degenerate phase condition.
        assert!(matches!(
            solve_envelope(&vdp, &flat, 1.0, &opts),
            Err(WampdeError::DegeneratePhase { .. })
        ));
    }
}
