//! Envelope (initial-value) WaMPDE solver.
//!
//! Discretises eq. (19)–(20) of the paper by time-stepping along the slow
//! axis `t2`: at each step a bordered nonlinear system in the `n·N0`
//! collocation samples plus the local frequency `ω(t2)` is solved by
//! Newton. This is the engine behind the paper's VCO experiments
//! (Figures 7–12): it tracks frequency-modulated envelopes taking `t2`
//! steps on the *modulation* time scale, independent of how many fast
//! carrier cycles elapse.

use crate::error::WampdeError;
use crate::init::WampdeInit;
use crate::linsolve::colloc_parts;
use crate::options::{OmegaMode, T2Integrator, T2StepControl, WampdeOptions};
use crate::result::{EnvelopeResult, EnvelopeStats};
use circuitdae::Dae;
use hb::Colloc;
use numkit::vecops::{norm2, wrms_norm, CompensatedSum};
use numkit::DMat;

/// Weighted update norm with *block* scaling: collocation samples are
/// weighted by the block's maximum magnitude (a per-entry weight would
/// demand machine-exact solves at zero crossings), the frequency unknown
/// by its own magnitude.
pub(crate) fn block_update_norm(
    dz: &[f64],
    x: &[f64],
    omega: Option<f64>,
    abstol: f64,
    reltol: f64,
) -> f64 {
    let len = x.len();
    let x_scale = x.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
    let wx = abstol + reltol * x_scale;
    let mut acc = 0.0;
    for &d in &dz[..len] {
        let e = d / wx;
        acc += e * e;
    }
    let mut count = len;
    if let Some(om) = omega {
        let womega = abstol + reltol * om.abs().max(1e-300);
        let e = dz[len] / womega;
        acc += e * e;
        count += 1;
    }
    (acc / count as f64).sqrt()
}

/// Scratch buffers for residual evaluation.
struct Work {
    q: Vec<f64>,
    dq: Vec<f64>,
    f: Vec<f64>,
    b: Vec<f64>,
}

impl Work {
    fn new(len: usize, n: usize) -> Self {
        Work {
            q: vec![0.0; len],
            dq: vec![0.0; len],
            f: vec![0.0; len],
            b: vec![0.0; n],
        }
    }
}

/// Evaluates the "instantaneous" WaMPDE operator
/// `g(X, ω, t2) = ω·D·q(X) + f(X) − b(t2)` (stacked, sample-major).
fn eval_g<D: Dae + ?Sized>(
    dae: &D,
    colloc: &Colloc,
    x: &[f64],
    omega: f64,
    t2: f64,
    w: &mut Work,
    out: &mut [f64],
) {
    colloc.eval_q_all(dae, x, &mut w.q);
    colloc.apply_diff(&w.q, &mut w.dq);
    colloc.eval_f_all(dae, x, &mut w.f);
    dae.eval_b(t2, &mut w.b);
    for s in 0..colloc.n0 {
        for i in 0..colloc.n {
            let k = colloc.idx(s, i);
            out[k] = omega * w.dq[k] + w.f[k] - w.b[i];
        }
    }
}

/// One accepted envelope point used by the predictor.
struct Accepted {
    t2: f64,
    z: Vec<f64>, // stacked X (+ ω in Free mode)
}

/// Solves the envelope (initial-value) WaMPDE from `t2 = 0` to `t2_end`.
///
/// `init` supplies one warped period of samples and the starting local
/// frequency — typically [`WampdeInit::from_orbit`] of the unforced
/// oscillator (the paper's "natural initial condition").
///
/// # Errors
///
/// See [`WampdeError`]; notably `DegeneratePhase` when the configured
/// phase variable does not oscillate, and `StepTooSmall`/`NewtonFailed`
/// when the slow-time stepping cannot proceed.
pub fn solve_envelope<D: Dae + ?Sized>(
    dae: &D,
    init: &WampdeInit,
    t2_end: f64,
    opts: &WampdeOptions,
) -> Result<EnvelopeResult, WampdeError> {
    let n = dae.dim();
    let colloc = Colloc::new(n, opts.harmonics);
    let len = colloc.len();
    if init.n0() != colloc.n0 {
        return Err(WampdeError::BadInput(format!(
            "init has {} samples, options require N0 = {}",
            init.n0(),
            colloc.n0
        )));
    }
    if init.samples.iter().any(|r| r.len() != n) {
        return Err(WampdeError::BadInput(
            "init sample width != dae dimension".into(),
        ));
    }
    // `partial_cmp` keeps the NaN-rejecting behavior of `!(v > 0.0)`.
    if t2_end.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(WampdeError::BadInput("t2_end must be positive".into()));
    }

    let free_omega = matches!(opts.omega_mode, OmegaMode::Free);
    let mut omega = match opts.omega_mode {
        OmegaMode::Free => init.freq_hz,
        OmegaMode::Frozen(w) => w,
    };
    if omega.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(WampdeError::BadInput(
            "initial frequency must be positive".into(),
        ));
    }

    let mut x = init.stacked();

    // Phase machinery (Free mode only).
    let phase_row = if free_omega {
        let row = colloc.phase_row(opts.phase_var, opts.phase_harmonic);
        // Degeneracy check: variable k must actually carry harmonic l.
        let var = colloc.extract_var(&x, opts.phase_var);
        let series = fourier::FourierSeries::from_samples(&var);
        let c = series.coeff(opts.phase_harmonic as isize);
        let scale = var.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
        if c.abs() < 1e-8 * scale {
            return Err(WampdeError::DegeneratePhase {
                var: opts.phase_var,
                harmonic: opts.phase_harmonic,
            });
        }
        Some(row)
    } else {
        None
    };

    let order = opts.integrator.order();

    let (adaptive, rtol, atol, mut h, h_min, h_max) = match opts.step {
        T2StepControl::Fixed(dt) => {
            if dt.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(WampdeError::BadInput(
                    "fixed t2 step must be positive".into(),
                ));
            }
            (false, 0.0, 0.0, dt, dt, dt)
        }
        T2StepControl::Adaptive {
            rtol,
            atol,
            dt_init,
            dt_min,
            dt_max,
        } => {
            let h0 = if dt_init > 0.0 {
                dt_init
            } else {
                t2_end / 200.0
            };
            let hmin = if dt_min > 0.0 { dt_min } else { t2_end * 1e-9 };
            let hmax = if dt_max > 0.0 { dt_max } else { t2_end / 20.0 };
            (true, rtol, atol, h0, hmin, hmax)
        }
    };

    let mut work = Work::new(len, n);
    let mut q_prev = vec![0.0; len];
    colloc.eval_q_all(dae, &x, &mut q_prev);
    let mut g_prev = vec![0.0; len];
    eval_g(dae, &colloc, &x, omega, 0.0, &mut work, &mut g_prev);
    // Two-step history for BDF2: (t, q) of the point before q_prev.
    let mut q_prev2: Option<(f64, Vec<f64>)> = None;
    let mut t_prev = 0.0_f64;

    // Result records.
    let mut t2s = vec![0.0];
    let mut omegas = vec![omega];
    let mut phis = vec![0.0];
    let mut states = vec![x.clone()];
    let mut stats = EnvelopeStats::default();
    let mut phi_acc = CompensatedSum::new();

    let mut history: Vec<Accepted> = vec![Accepted {
        t2: 0.0,
        z: pack(&x, omega, free_omega),
    }];

    let mut t2 = 0.0;
    let max_attempts = 4_000_000usize;
    let mut attempts = 0usize;

    while t2 < t2_end - 1e-15 * t2_end {
        attempts += 1;
        if attempts > max_attempts {
            return Err(WampdeError::StepTooSmall { at_t2: t2, step: h });
        }
        let mut h_try = h.min(t2_end - t2);
        // Stretch the final step (≤1 %) to absorb the floating-point
        // remainder: a micro-step makes C/h dominate the bordered Jacobian
        // and the phase/ω border numerically singular.
        if t2_end - (t2 + h_try) < 0.01 * h_try {
            h_try = t2_end - t2;
        }
        let t_new = t2 + h_try;

        // --- Newton solve of the step system. ---
        let mut x_new = x.clone();
        let mut omega_new = omega;
        // Predictor from history (helps both Newton and LTE control).
        let predicted = predict(&history, t_new);
        if let Some(pred) = &predicted {
            x_new.copy_from_slice(&pred[..len]);
            if free_omega {
                omega_new = pred[len];
            }
        }

        // Scheme coefficients for this step:
        //   r = a0h·q(X) + qlin + θ·g(X,ω,t_new) + (1−θ)·g_prev.
        let (a0h, theta, qlin) = match opts.integrator {
            T2Integrator::BackwardEuler => {
                let qlin: Vec<f64> = q_prev.iter().map(|q| -q / h_try).collect();
                (1.0 / h_try, 1.0, qlin)
            }
            T2Integrator::Trapezoidal => {
                let qlin: Vec<f64> = q_prev.iter().map(|q| -q / h_try).collect();
                (1.0 / h_try, 0.5, qlin)
            }
            T2Integrator::Bdf2 => match &q_prev2 {
                None => {
                    // Self-start with one Backward-Euler step.
                    let qlin: Vec<f64> = q_prev.iter().map(|q| -q / h_try).collect();
                    (1.0 / h_try, 1.0, qlin)
                }
                Some((t_pp, q_pp)) => {
                    let h_prev = t_prev - t_pp;
                    let rho = h_try / h_prev;
                    let a0 = (1.0 + 2.0 * rho) / (1.0 + rho);
                    let a1 = -(1.0 + rho);
                    let a2 = rho * rho / (1.0 + rho);
                    let qlin: Vec<f64> = q_prev
                        .iter()
                        .zip(q_pp.iter())
                        .map(|(qp, qpp)| (a1 * qp + a2 * qpp) / h_try)
                        .collect();
                    (a0 / h_try, 1.0, qlin)
                }
            },
        };

        let newton = newton_step(
            dae,
            &colloc,
            opts,
            a0h,
            theta,
            &qlin,
            t_new,
            &g_prev,
            phase_row.as_deref(),
            &mut x_new,
            &mut omega_new,
            &mut work,
        );

        let accept = match newton {
            Ok(iters) => {
                stats.newton_iterations += iters;
                if adaptive {
                    match &predicted {
                        Some(pred) => {
                            let z_new = pack(&x_new, omega_new, free_omega);
                            let diff: Vec<f64> =
                                z_new.iter().zip(pred.iter()).map(|(a, b)| a - b).collect();
                            let err = wrms_norm(&diff, &z_new, atol, rtol) / 5.0;
                            let exponent = -1.0 / (order as f64 + 1.0);
                            if err <= 1.0 {
                                let grow = 0.9 * err.max(1e-10).powf(exponent);
                                h = (h_try * grow.clamp(0.25, 2.5)).clamp(h_min, h_max);
                                true
                            } else {
                                let shrink = 0.9 * err.powf(exponent);
                                h = (h_try * shrink.clamp(0.1, 0.9)).max(h_min);
                                false
                            }
                        }
                        None => true,
                    }
                } else {
                    true
                }
            }
            Err(e) => {
                if h_try <= h_min * 1.0000001 {
                    return Err(e);
                }
                h = (h_try * 0.25).max(h_min);
                false
            }
        };

        if accept {
            // Warping-function quadrature: φ += h·(ω_old + ω_new)/2 (cycles).
            phi_acc.add(h_try * 0.5 * (omega + omega_new));
            q_prev2 = Some((t_prev, q_prev.clone()));
            t_prev = t_new;
            t2 = t_new;
            x = x_new;
            omega = omega_new;
            colloc.eval_q_all(dae, &x, &mut q_prev);
            eval_g(dae, &colloc, &x, omega, t2, &mut work, &mut g_prev);
            t2s.push(t2);
            omegas.push(omega);
            phis.push(phi_acc.value());
            states.push(x.clone());
            stats.steps += 1;
            history.push(Accepted {
                t2,
                z: pack(&x, omega, free_omega),
            });
            if history.len() > 3 {
                history.remove(0);
            }
        } else {
            stats.rejected += 1;
            if adaptive && h <= h_min * 1.0000001 {
                return Err(WampdeError::StepTooSmall { at_t2: t2, step: h });
            }
        }
    }

    Ok(EnvelopeResult {
        n,
        n0: colloc.n0,
        t2: t2s,
        omega_hz: omegas,
        phi: phis,
        states,
        stats,
    })
}

fn pack(x: &[f64], omega: f64, free_omega: bool) -> Vec<f64> {
    let mut z = x.to_vec();
    if free_omega {
        z.push(omega);
    }
    z
}

/// Polynomial extrapolation of the envelope unknowns: quadratic through
/// the last three accepted points when available (so the predictor is one
/// order above BDF2 and the predictor–corrector difference estimates its
/// LTE), linear through two otherwise.
fn predict(history: &[Accepted], t: f64) -> Option<Vec<f64>> {
    match history.len() {
        0 | 1 => None,
        2 => {
            let a = &history[history.len() - 2];
            let b = &history[history.len() - 1];
            let w = (t - a.t2) / (b.t2 - a.t2);
            Some(
                a.z.iter()
                    .zip(b.z.iter())
                    .map(|(p, q)| p * (1.0 - w) + q * w)
                    .collect(),
            )
        }
        _ => {
            let a = &history[history.len() - 3];
            let b = &history[history.len() - 2];
            let c = &history[history.len() - 1];
            let la = (t - b.t2) * (t - c.t2) / ((a.t2 - b.t2) * (a.t2 - c.t2));
            let lb = (t - a.t2) * (t - c.t2) / ((b.t2 - a.t2) * (b.t2 - c.t2));
            let lc = (t - a.t2) * (t - b.t2) / ((c.t2 - a.t2) * (c.t2 - b.t2));
            Some(
                (0..a.z.len())
                    .map(|i| a.z[i] * la + b.z[i] * lb + c.z[i] * lc)
                    .collect(),
            )
        }
    }
}

/// Newton iteration for one implicit `t2` step with residual
/// `r = a0h·q(X) + qlin + θ·g(X,ω,t_new) + (1−θ)·g_prev`.
/// Returns iterations used.
#[allow(clippy::too_many_arguments)]
fn newton_step<D: Dae + ?Sized>(
    dae: &D,
    colloc: &Colloc,
    opts: &WampdeOptions,
    a0h: f64,
    theta: f64,
    qlin: &[f64],
    t_new: f64,
    g_prev: &[f64],
    phase_row: Option<&[f64]>,
    x: &mut [f64],
    omega: &mut f64,
    work: &mut Work,
) -> Result<usize, WampdeError> {
    let len = colloc.len();
    let n = colloc.n;
    let free_omega = phase_row.is_some();
    let dim = len + usize::from(free_omega);

    let residual = |x: &[f64], omega: f64, work: &mut Work, out: &mut Vec<f64>| {
        out.resize(dim, 0.0);
        colloc.eval_q_all(dae, x, &mut work.q);
        colloc.apply_diff(&work.q, &mut work.dq);
        colloc.eval_f_all(dae, x, &mut work.f);
        dae.eval_b(t_new, &mut work.b);
        for s in 0..colloc.n0 {
            for i in 0..n {
                let k = colloc.idx(s, i);
                let g_inst = omega * work.dq[k] + work.f[k] - work.b[i];
                out[k] = a0h * work.q[k] + qlin[k] + theta * g_inst + (1.0 - theta) * g_prev[k];
            }
        }
        if let Some(row) = phase_row {
            out[len] = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
    };

    let mut r = Vec::with_capacity(dim);
    residual(x, *omega, work, &mut r);
    let mut rnorm = norm2(&r);

    let mut cblocks: Vec<DMat> = (0..colloc.n0).map(|_| DMat::zeros(n, n)).collect();
    let mut gblocks: Vec<DMat> = (0..colloc.n0).map(|_| DMat::zeros(n, n)).collect();

    for iter in 1..=opts.newton.max_iter {
        // Assemble Jacobian parts at the current iterate.
        for s in 0..colloc.n0 {
            let xs = &x[s * n..(s + 1) * n];
            dae.jac_q(xs, &mut cblocks[s]);
            dae.jac_f(xs, &mut gblocks[s]);
        }
        // ∂r/∂ω column = θ·(D·q)(s): recompute dq at the iterate.
        colloc.eval_q_all(dae, x, &mut work.q);
        colloc.apply_diff(&work.q, &mut work.dq);
        let omega_col: Vec<f64> = work.dq.iter().map(|v| theta * v).collect();

        let parts = colloc_parts(
            colloc,
            &cblocks,
            &gblocks,
            a0h,
            theta,
            *omega,
            phase_row.map(|row| (row, omega_col.as_slice())),
        );
        let factored = crate::linsolve::factor(&parts, opts.linear_solver, t_new)?;
        let mut dz = r.clone();
        crate::linsolve::solve_in_place(&factored, &mut dz, t_new)?;
        for v in dz.iter_mut() {
            *v = -*v;
        }

        // Damped update on the true residual norm.
        let mut lambda = 1.0_f64;
        let mut x_trial = vec![0.0; len];
        let mut r_trial = Vec::with_capacity(dim);
        loop {
            for i in 0..len {
                x_trial[i] = x[i] + lambda * dz[i];
            }
            let omega_trial = if free_omega {
                *omega + lambda * dz[len]
            } else {
                *omega
            };
            residual(&x_trial, omega_trial, work, &mut r_trial);
            let rt = norm2(&r_trial);
            if rt.is_finite() && (rt <= rnorm || lambda <= opts.newton.min_damping) {
                x.copy_from_slice(&x_trial);
                *omega = omega_trial;
                r.clone_from(&r_trial);
                rnorm = rt;
                break;
            }
            lambda *= 0.5;
        }

        let dz_scaled: Vec<f64> = dz.iter().map(|v| v * lambda).collect();
        let update = block_update_norm(
            &dz_scaled,
            x,
            free_omega.then_some(*omega),
            opts.newton.abstol,
            opts.newton.reltol,
        );
        if update <= 1.0 {
            return Ok(iter);
        }
    }

    Err(WampdeError::NewtonFailed {
        at_t2: t_new,
        iterations: opts.newton.max_iter,
        residual: rnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{LinearSolverKind, T2Integrator, T2StepControl};
    use circuitdae::analytic::VanDerPol;
    use circuitdae::circuits::{self, MemsVcoConfig};
    use shooting::{oscillator_steady_state, ShootingOptions};

    fn small_opts() -> WampdeOptions {
        WampdeOptions {
            harmonics: 6,
            ..Default::default()
        }
    }

    #[test]
    fn constant_control_keeps_frequency() {
        // With DC control the VCO is in steady state: ω(t2) must stay at
        // the unforced frequency and the samples must not drift.
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let opts = WampdeOptions {
            step: T2StepControl::Fixed(2.0e-6),
            ..small_opts()
        };
        let init = WampdeInit::from_orbit(&orbit, &opts);
        let res = solve_envelope(&dae, &init, 2.0e-5, &opts).unwrap();
        let f0 = orbit.frequency();
        // ω stays within the discretisation error of the shooting value
        // (the WaMPDE's own steady frequency differs from shooting's by the
        // harmonic-truncation error of M = 6)…
        for (&t, &w) in res.t2.iter().zip(res.omega_hz.iter()) {
            assert!(
                (w - f0).abs() / f0 < 1e-2,
                "t2={t}: omega {w} drifted from {f0}"
            );
        }
        // …and once settled onto the discrete steady state it is *flat*.
        let mid = res.omega_hz[res.omega_hz.len() / 2];
        let last = *res.omega_hz.last().unwrap();
        assert!(
            (last - mid).abs() / mid < 1e-6,
            "omega not settled: {mid} vs {last}"
        );
        // Samples stay near the initial periodic solution.
        let first = &res.states[0];
        let last_state = res.states.last().unwrap();
        let drift = first
            .iter()
            .zip(last_state.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(drift < 0.1, "sample drift {drift}");
    }

    #[test]
    fn unforced_vdp_envelope_stays_put() {
        let vdp = VanDerPol::unforced(0.5);
        let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();
        // Backward Euler settles onto the discrete fixed point fastest
        // (BDF2's parasitic root decays the initial-condition error more
        // slowly; both converge to the same point — see below).
        let opts = WampdeOptions {
            step: T2StepControl::Fixed(0.5),
            integrator: T2Integrator::BackwardEuler,
            ..small_opts()
        };
        let init = WampdeInit::from_orbit(&orbit, &opts);
        let res = solve_envelope(&vdp, &init, 20.0, &opts).unwrap();
        let f0 = orbit.frequency();
        let (lo, hi) = res.frequency_range();
        assert!(
            (lo - f0).abs() / f0 < 1e-2 && (hi - f0).abs() / f0 < 1e-2,
            "range ({lo}, {hi}) vs shooting {f0}"
        );
        // Settled flatness over the final quarter of the run.
        let q3 = res.omega_hz[res.omega_hz.len() * 3 / 4];
        let last = *res.omega_hz.last().unwrap();
        assert!((last - q3).abs() / q3 < 1e-6, "not settled: {q3} vs {last}");
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let base = WampdeOptions {
            step: T2StepControl::Fixed(2.0e-6),
            harmonics: 5,
            ..Default::default()
        };
        let init = WampdeInit::from_orbit(&orbit, &base);
        let dense = solve_envelope(&dae, &init, 1.0e-5, &base).unwrap();
        let sparse_opts = WampdeOptions {
            linear_solver: LinearSolverKind::SparseLu,
            ..base
        };
        let sparse = solve_envelope(&dae, &init, 1.0e-5, &sparse_opts).unwrap();
        for (a, b) in dense.omega_hz.iter().zip(sparse.omega_hz.iter()) {
            assert!((a - b).abs() / a < 1e-9);
        }
    }

    #[test]
    fn all_backends_agree_on_lc_vco_envelope() {
        // The paper's basic LC VCO: dense, sparse-LU, and GMRES+ILU(0)
        // envelopes must agree on ω(t2) to tight tolerance.
        let dae = circuits::lc_vco();
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let base = WampdeOptions {
            step: T2StepControl::Fixed(2.0e-6),
            harmonics: 5,
            ..Default::default()
        };
        let init = WampdeInit::from_orbit(&orbit, &base);
        let dense = solve_envelope(&dae, &init, 1.0e-5, &base).unwrap();
        for kind in [
            LinearSolverKind::SparseLu,
            LinearSolverKind::gmres_default(),
        ] {
            let opts = WampdeOptions {
                linear_solver: kind,
                ..base
            };
            let other = solve_envelope(&dae, &init, 1.0e-5, &opts).unwrap();
            assert_eq!(dense.omega_hz.len(), other.omega_hz.len());
            for (a, b) in dense.omega_hz.iter().zip(other.omega_hz.iter()) {
                assert!((a - b).abs() / a < 1e-9, "{}: {a} vs {b}", kind.label());
            }
        }
    }

    #[test]
    fn phi_is_monotone_and_consistent() {
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let opts = WampdeOptions {
            step: T2StepControl::Fixed(1.0e-6),
            ..small_opts()
        };
        let init = WampdeInit::from_orbit(&orbit, &opts);
        let res = solve_envelope(&dae, &init, 1.0e-5, &opts).unwrap();
        for w in res.phi.windows(2) {
            assert!(w[1] > w[0]);
        }
        // φ(T) ≈ f0·T for constant frequency.
        let expect = orbit.frequency() * 1.0e-5;
        let got = *res.phi.last().unwrap();
        assert!((got - expect).abs() / expect < 1e-3, "{got} vs {expect}");
    }

    #[test]
    fn bad_inputs_rejected() {
        let vdp = VanDerPol::unforced(0.5);
        let opts = small_opts();
        let bad_n0 = WampdeInit::from_samples(vec![vec![0.0, 0.0]; 3], 1.0);
        assert!(solve_envelope(&vdp, &bad_n0, 1.0, &opts).is_err());
        let bad_width = WampdeInit::from_samples(vec![vec![0.0]; opts.n0()], 1.0);
        assert!(solve_envelope(&vdp, &bad_width, 1.0, &opts).is_err());
        let flat = WampdeInit::from_samples(vec![vec![0.0, 0.0]; opts.n0()], 1.0);
        // Flat initial data → degenerate phase condition.
        assert!(matches!(
            solve_envelope(&vdp, &flat, 1.0, &opts),
            Err(WampdeError::DegeneratePhase { .. })
        ));
    }
}
