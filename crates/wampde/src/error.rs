//! Error type for the WaMPDE solvers.

use std::fmt;

/// Errors from WaMPDE envelope / quasiperiodic solves.
#[derive(Debug, Clone, PartialEq)]
pub enum WampdeError {
    /// The per-step (or global) Newton iteration failed.
    NewtonFailed {
        /// Slow time at which the failure occurred.
        at_t2: f64,
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// A linear solve inside Newton failed.
    LinearSolve {
        /// Slow time at which the failure occurred.
        at_t2: f64,
        /// Human-readable cause.
        cause: String,
    },
    /// Adaptive slow-time stepping underflowed its minimum step.
    StepTooSmall {
        /// Slow time at which the failure occurred.
        at_t2: f64,
        /// Rejected step.
        step: f64,
    },
    /// The phase condition is degenerate for the chosen variable/harmonic
    /// (that coefficient is ≈ 0, so it cannot pin the warped phase).
    DegeneratePhase {
        /// Chosen variable index.
        var: usize,
        /// Chosen harmonic.
        harmonic: usize,
    },
    /// Invalid configuration or initial data.
    BadInput(String),
}

impl fmt::Display for WampdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WampdeError::NewtonFailed {
                at_t2,
                iterations,
                residual,
            } => write!(
                f,
                "wampde newton failed at t2={at_t2:.6e} after {iterations} iterations (residual {residual:.3e})"
            ),
            WampdeError::LinearSolve { at_t2, cause } => {
                write!(f, "wampde linear solve failed at t2={at_t2:.6e}: {cause}")
            }
            WampdeError::StepTooSmall { at_t2, step } => {
                write!(f, "wampde slow-time step {step:.3e} underflow at t2={at_t2:.6e}")
            }
            WampdeError::DegeneratePhase { var, harmonic } => write!(
                f,
                "phase condition degenerate: variable {var} has no harmonic-{harmonic} content"
            ),
            WampdeError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for WampdeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = WampdeError::DegeneratePhase {
            var: 1,
            harmonic: 2,
        };
        assert!(e.to_string().contains("variable 1"));
        let e = WampdeError::StepTooSmall {
            at_t2: 1.0,
            step: 1e-12,
        };
        assert!(e.to_string().contains("underflow"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WampdeError>();
    }
}
