//! Initial conditions for WaMPDE runs, with phase alignment.

use crate::error::WampdeError;
use crate::options::WampdeOptions;
use fourier::FourierSeries;
use shooting::PeriodicOrbit;

/// Initial bivariate data for a WaMPDE run: one warped-time period of
/// samples plus the starting local frequency.
///
/// The natural initial condition (paper §4.1) is the solution of the
/// *unforced* system — the oscillator's periodic steady state with the
/// control input held at its `t = 0` value. [`WampdeInit::from_orbit`]
/// builds exactly that from a shooting result.
#[derive(Debug, Clone)]
pub struct WampdeInit {
    /// `N0` rows of `n` variables: sample `s` is the state at warped time
    /// `t1 = s/N0`.
    pub samples: Vec<Vec<f64>>,
    /// Initial local frequency (Hz).
    pub freq_hz: f64,
}

impl WampdeInit {
    /// Builds an initial condition from a periodic orbit, resampling onto
    /// the collocation grid and rotating the warped-time origin so the
    /// phase condition `Im{X̂ᵏ_l} = 0` holds exactly at `t2 = 0`.
    pub fn from_orbit(orbit: &PeriodicOrbit, opts: &WampdeOptions) -> Self {
        let samples = orbit.resample_uniform(opts.n0());
        let mut init = WampdeInit {
            samples,
            freq_hz: orbit.frequency(),
        };
        // Alignment failure just means the raw phase is kept; the solvers
        // re-validate and report degeneracy with context.
        let _ = init.align_phase(opts.phase_var, opts.phase_harmonic);
        init
    }

    /// Builds from explicit samples (`N0 × n`) and a starting frequency.
    pub fn from_samples(samples: Vec<Vec<f64>>, freq_hz: f64) -> Self {
        WampdeInit { samples, freq_hz }
    }

    /// Number of collocation samples.
    pub fn n0(&self) -> usize {
        self.samples.len()
    }

    /// Rotates the warped-time origin (`t1 → t1 + Δ`) so that the `l`-th
    /// Fourier coefficient of variable `k` becomes purely real, i.e. the
    /// phase condition of eq. (20) is satisfied by the initial data.
    ///
    /// # Errors
    ///
    /// [`WampdeError::DegeneratePhase`] when variable `k` carries
    /// (numerically) no harmonic-`l` content, so no rotation can pin it.
    pub fn align_phase(&mut self, k: usize, l: usize) -> Result<(), WampdeError> {
        let n0 = self.samples.len();
        let n = self.samples.first().map_or(0, Vec::len);
        if k >= n {
            return Err(WampdeError::BadInput(format!(
                "phase variable {k} out of range (n = {n})"
            )));
        }
        let var_k: Vec<f64> = self.samples.iter().map(|row| row[k]).collect();
        let series = FourierSeries::from_samples(&var_k);
        let c = series.coeff(l as isize);
        let scale = var_k
            .iter()
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(1e-300);
        if c.abs() < 1e-9 * scale {
            return Err(WampdeError::DegeneratePhase {
                var: k,
                harmonic: l,
            });
        }
        // Shifting samples to x̂(t1 + Δ) multiplies coefficient c_l by
        // e^{j2πlΔ}; choose Δ so the result is real: 2πlΔ = −arg(c).
        let delta = -c.arg() / (2.0 * std::f64::consts::PI * l as f64);
        let per_var: Vec<FourierSeries> = (0..n)
            .map(|i| {
                let v: Vec<f64> = self.samples.iter().map(|row| row[i]).collect();
                FourierSeries::from_samples(&v)
            })
            .collect();
        for (s, row) in self.samples.iter_mut().enumerate() {
            let t1 = s as f64 / n0 as f64 + delta;
            for (i, series_i) in per_var.iter().enumerate() {
                row[i] = series_i.eval(t1);
            }
        }
        Ok(())
    }

    /// Flattens into the sample-major stacked layout of [`hb::Colloc`].
    pub fn stacked(&self) -> Vec<f64> {
        self.samples.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb::Colloc;

    fn sine_samples(n0: usize, phase: f64) -> Vec<Vec<f64>> {
        (0..n0)
            .map(|s| {
                let t = s as f64 / n0 as f64;
                vec![
                    (2.0 * std::f64::consts::PI * t + phase).sin(),
                    (2.0 * std::f64::consts::PI * t + phase).cos(),
                ]
            })
            .collect()
    }

    #[test]
    fn align_phase_zeroes_imaginary_part() {
        let mut init = WampdeInit::from_samples(sine_samples(9, 0.7), 1.0);
        init.align_phase(0, 1).unwrap();
        let colloc = Colloc::new(2, 4);
        let stacked = init.stacked();
        assert!(colloc.phase_value(&stacked, 0, 1).abs() < 1e-10);
    }

    #[test]
    fn align_phase_preserves_waveform_shape() {
        let mut init = WampdeInit::from_samples(sine_samples(9, 1.1), 1.0);
        init.align_phase(0, 1).unwrap();
        // The two variables must stay in quadrature (rigid rotation).
        for row in &init.samples {
            let r = row[0] * row[0] + row[1] * row[1];
            assert!((r - 1.0).abs() < 1e-9, "norm broken: {r}");
        }
    }

    #[test]
    fn degenerate_phase_detected() {
        // Constant variable has no first harmonic.
        let samples: Vec<Vec<f64>> = (0..9).map(|_| vec![1.0]).collect();
        let mut init = WampdeInit::from_samples(samples, 1.0);
        assert!(matches!(
            init.align_phase(0, 1),
            Err(WampdeError::DegeneratePhase { .. })
        ));
    }

    #[test]
    fn out_of_range_var_rejected() {
        let mut init = WampdeInit::from_samples(sine_samples(9, 0.0), 1.0);
        assert!(matches!(
            init.align_phase(5, 1),
            Err(WampdeError::BadInput(_))
        ));
    }

    #[test]
    fn stacked_layout_is_sample_major() {
        let init =
            WampdeInit::from_samples(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]], 1.0);
        assert_eq!(init.stacked(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }
}
