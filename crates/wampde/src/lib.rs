//! The Warped Multirate Partial Differential Equation (WaMPDE).
//!
//! This crate is the paper's primary contribution. For a circuit DAE
//! `d/dt q(x) + f(x) = b(t)` (eq. (12)) the two-time WaMPDE (eq. (16)) is
//!
//! ```text
//! ω(t2)·∂q(x̂)/∂t1 + ∂q(x̂)/∂t2 + f(x̂) = b(t2),
//! ```
//!
//! whose solution `x̂(t1, t2)` — 1-periodic in the *warped* time `t1` —
//! recovers a solution of the original DAE through the warping function
//! (eq. (17)):
//!
//! ```text
//! x(t) = x̂(φ(t), t),   φ(t) = ∫₀ᵗ ω(τ) dτ.
//! ```
//!
//! The local frequency `ω(t2)` is an explicit unknown pinned by the phase
//! condition `Im{X̂ᵏ_l(t2)} = 0` (eq. (20)), which simultaneously removes
//! the `t1`-translation ambiguity and prevents the unbounded phase-error
//! growth of transient integration.
//!
//! Discretisation (Section 4 of the paper, mixed frequency–time): harmonic
//! balance with `N0 = 2M+1` collocation samples along `t1` (the shared
//! [`hb::Colloc`] core), Backward-Euler or Trapezoidal time-stepping along
//! `t2`. Two solution regimes:
//!
//! * [`envelope::solve_envelope`] — initial conditions in `t2`:
//!   envelope-modulated FM transients (paper Figures 7–12);
//! * [`quasiperiodic::solve_quasiperiodic`] — periodic boundary conditions
//!   in `t2`: FM/AM-quasiperiodic steady states, mode locking and period
//!   multiplication as special cases (Section 4.1).
//!
//! # Example
//!
//! ```no_run
//! use circuitdae::circuits::{self, MemsVcoConfig};
//! use shooting::{oscillator_steady_state, ShootingOptions};
//! use wampde::{solve_envelope, WampdeInit, WampdeOptions};
//!
//! // The paper's VCO with the vacuum-damped MEMS varactor.
//! let cfg = MemsVcoConfig::paper_vacuum();
//! let dae = circuits::mems_vco(cfg);
//! let opts = WampdeOptions::default();
//!
//! // Initialise from the unforced periodic steady state…
//! let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
//! let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default()).unwrap();
//! let init = WampdeInit::from_orbit(&orbit, &opts);
//!
//! // …then track three control periods of FM in warped time.
//! let result = solve_envelope(&dae, &init, 120e-6, &opts).unwrap();
//! println!("local frequency swing: {:?}", result.frequency_range());
//! ```

pub mod deck;
pub mod envelope;
pub mod error;
pub mod init;
pub mod linsolve;
pub mod options;
pub mod quasiperiodic;
pub mod result;

pub use deck::{run_wampde_spec, run_wampde_spec_warm};
pub use envelope::solve_envelope;
pub use error::WampdeError;
pub use init::WampdeInit;
pub use options::{LinearSolverKind, OmegaMode, T2Integrator, T2StepControl, WampdeOptions};
pub use quasiperiodic::{solve_quasiperiodic, QuasiPeriodicSolution};
pub use result::EnvelopeResult;
