//! Pluggable linear solvers for the bordered collocation Jacobian.
//!
//! The per-step WaMPDE Jacobian has the block structure
//!
//! ```text
//! J[s,s'] = δ_{ss'}·(inv_h·C_s + θ·G_s) + θ·ω·D[s,s']·C_{s'}
//! ```
//!
//! optionally bordered by a phase row and an `∂r/∂ω` column. Small
//! circuits use dense LU; larger ones the in-house sparse LU or
//! GMRES+ILU(0) (the "iterative linear techniques" route of the paper).

use crate::error::WampdeError;
use crate::options::LinearSolverKind;
use hb::Colloc;
use numkit::{DMat, DenseLu};
use sparsekit::{gmres, CsrOp, GmresOptions, Ilu0, SparseLu, Triplets};

/// Assembly-ready description of one bordered collocation Jacobian.
pub struct JacobianParts<'a> {
    /// Collocation core.
    pub colloc: &'a Colloc,
    /// Per-sample `C_s = ∂q/∂x`.
    pub cblocks: &'a [DMat],
    /// Per-sample `G_s = ∂f/∂x`.
    pub gblocks: &'a [DMat],
    /// Coefficient of `C_s` on the diagonal (`1/h`, or `a0/h`).
    pub inv_h: f64,
    /// Weight of the instantaneous terms (1 for BE, ½ for trapezoidal).
    pub theta: f64,
    /// Current local frequency (Hz).
    pub omega: f64,
    /// Optional border: (phase row, `∂r/∂ω` column), both of length
    /// `colloc.len()`; the corner entry is zero.
    pub border: Option<(&'a [f64], &'a [f64])>,
}

impl JacobianParts<'_> {
    /// Total system dimension including the border.
    pub fn dim(&self) -> usize {
        self.colloc.len() + usize::from(self.border.is_some())
    }

    fn assemble_dense(&self) -> DMat {
        let len = self.colloc.len();
        let n = self.colloc.n;
        let mut jac = DMat::zeros(self.dim(), self.dim());
        for s in 0..self.colloc.n0 {
            let g = &self.gblocks[s];
            let c = &self.cblocks[s];
            for i in 0..n {
                for j in 0..n {
                    jac[(self.colloc.idx(s, i), self.colloc.idx(s, j))] +=
                        self.inv_h * c[(i, j)] + self.theta * g[(i, j)];
                }
            }
        }
        for s in 0..self.colloc.n0 {
            for sp in 0..self.colloc.n0 {
                let d = self.theta * self.omega * self.colloc.dmat[(s, sp)];
                if d == 0.0 {
                    continue;
                }
                let c = &self.cblocks[sp];
                for i in 0..n {
                    for j in 0..n {
                        jac[(self.colloc.idx(s, i), self.colloc.idx(sp, j))] += d * c[(i, j)];
                    }
                }
            }
        }
        if let Some((row, col)) = self.border {
            for k in 0..len {
                jac[(len, k)] = row[k];
                jac[(k, len)] = col[k];
            }
        }
        jac
    }

    fn assemble_triplets(&self, precond_corner: bool) -> Triplets {
        let len = self.colloc.len();
        let n = self.colloc.n;
        let dim = self.dim();
        let mut t =
            Triplets::with_capacity(dim, dim, self.colloc.n0 * self.colloc.n0 * n + 4 * len);
        for s in 0..self.colloc.n0 {
            let g = &self.gblocks[s];
            let c = &self.cblocks[s];
            for i in 0..n {
                for j in 0..n {
                    let v = self.inv_h * c[(i, j)] + self.theta * g[(i, j)];
                    if v != 0.0 {
                        t.push(self.colloc.idx(s, i), self.colloc.idx(s, j), v);
                    }
                }
            }
        }
        for s in 0..self.colloc.n0 {
            for sp in 0..self.colloc.n0 {
                let d = self.theta * self.omega * self.colloc.dmat[(s, sp)];
                if d == 0.0 {
                    continue;
                }
                let c = &self.cblocks[sp];
                for i in 0..n {
                    for j in 0..n {
                        let v = d * c[(i, j)];
                        if v != 0.0 {
                            t.push(self.colloc.idx(s, i), self.colloc.idx(sp, j), v);
                        }
                    }
                }
            }
        }
        if let Some((row, col)) = self.border {
            for k in 0..len {
                if row[k] != 0.0 {
                    t.push(len, k, row[k]);
                }
                if col[k] != 0.0 {
                    t.push(k, len, col[k]);
                }
            }
            if precond_corner {
                // ILU(0) needs a structurally nonzero diagonal; the true
                // corner is 0, so only the *preconditioner* gets this entry.
                t.push(len, len, 1.0);
            }
        }
        t
    }
}

/// A factored (or preconditioned) Jacobian ready for repeated solves.
pub enum FactoredJacobian {
    /// Dense LU factors.
    Dense(DenseLu),
    /// Sparse LU factors.
    Sparse(SparseLu),
    /// CSR operator + ILU(0) preconditioner for GMRES.
    Gmres {
        /// Assembled matrix (true operator; corner untouched).
        a: sparsekit::Csr,
        /// ILU(0) of the corner-regularised matrix.
        precond: Ilu0,
        /// Iteration parameters.
        opts: GmresOptions,
    },
}

impl FactoredJacobian {
    /// Factors the described Jacobian with the requested backend.
    ///
    /// # Errors
    ///
    /// [`WampdeError::LinearSolve`] when the factorisation fails.
    pub fn factor(
        parts: &JacobianParts<'_>,
        kind: LinearSolverKind,
        at_t2: f64,
    ) -> Result<Self, WampdeError> {
        match kind {
            LinearSolverKind::Dense => {
                let jac = parts.assemble_dense();
                let lu = DenseLu::factor(&jac).map_err(|e| WampdeError::LinearSolve {
                    at_t2,
                    cause: e.to_string(),
                })?;
                Ok(FactoredJacobian::Dense(lu))
            }
            LinearSolverKind::SparseLu => {
                let csc = parts.assemble_triplets(false).to_csc();
                let lu = SparseLu::factor(&csc).map_err(|e| WampdeError::LinearSolve {
                    at_t2,
                    cause: e.to_string(),
                })?;
                Ok(FactoredJacobian::Sparse(lu))
            }
            LinearSolverKind::GmresIlu0 {
                restart,
                max_iters,
                rtol,
            } => {
                let a = parts.assemble_triplets(false).to_csr();
                let precond_mat = parts.assemble_triplets(true).to_csr();
                let precond = Ilu0::factor(&precond_mat).map_err(|e| WampdeError::LinearSolve {
                    at_t2,
                    cause: format!("ilu0: {e}"),
                })?;
                Ok(FactoredJacobian::Gmres {
                    a,
                    precond,
                    opts: GmresOptions {
                        restart,
                        max_iters,
                        rtol,
                        atol: 1e-300,
                    },
                })
            }
        }
    }

    /// Solves `J·x = rhs` in place.
    ///
    /// # Errors
    ///
    /// [`WampdeError::LinearSolve`] when the backend fails (e.g. GMRES
    /// stagnates).
    pub fn solve_in_place(&self, rhs: &mut [f64], at_t2: f64) -> Result<(), WampdeError> {
        match self {
            FactoredJacobian::Dense(lu) => {
                lu.solve_in_place(rhs)
                    .map_err(|e| WampdeError::LinearSolve {
                        at_t2,
                        cause: e.to_string(),
                    })
            }
            FactoredJacobian::Sparse(lu) => {
                lu.solve_in_place(rhs)
                    .map_err(|e| WampdeError::LinearSolve {
                        at_t2,
                        cause: e.to_string(),
                    })
            }
            FactoredJacobian::Gmres { a, precond, opts } => {
                let op = CsrOp::new(a);
                let result =
                    gmres(&op, precond, rhs, None, opts).map_err(|e| WampdeError::LinearSolve {
                        at_t2,
                        cause: e.to_string(),
                    })?;
                rhs.copy_from_slice(&result.x);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::analytic::VanDerPol;
    use circuitdae::Dae;

    /// Builds JacobianParts for a vdP collocation state and checks all
    /// three backends produce the same solution.
    #[test]
    fn backends_agree() {
        let vdp = VanDerPol::unforced(0.8);
        let colloc = Colloc::new(2, 3);
        let len = colloc.len();
        let x: Vec<f64> = (0..len).map(|i| (0.37 * i as f64).sin()).collect();

        let mut cblocks = Vec::new();
        let mut gblocks = Vec::new();
        for s in 0..colloc.n0 {
            let xs = &x[s * 2..s * 2 + 2];
            let mut c = DMat::zeros(2, 2);
            let mut g = DMat::zeros(2, 2);
            vdp.jac_q(xs, &mut c);
            vdp.jac_f(xs, &mut g);
            cblocks.push(c);
            gblocks.push(g);
        }
        let row: Vec<f64> = colloc.phase_row(0, 1);
        let col: Vec<f64> = (0..len).map(|i| 0.1 + (i as f64 * 0.11).cos()).collect();
        let parts = JacobianParts {
            colloc: &colloc,
            cblocks: &cblocks,
            gblocks: &gblocks,
            inv_h: 10.0,
            theta: 0.5,
            omega: 1.3,
            border: Some((&row, &col)),
        };
        let rhs: Vec<f64> = (0..parts.dim())
            .map(|i| ((i * 3 % 7) as f64) - 3.0)
            .collect();

        let mut dense_sol = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::Dense, 0.0)
            .unwrap()
            .solve_in_place(&mut dense_sol, 0.0)
            .unwrap();

        let mut sparse_sol = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::SparseLu, 0.0)
            .unwrap()
            .solve_in_place(&mut sparse_sol, 0.0)
            .unwrap();

        let mut gmres_sol = rhs.clone();
        FactoredJacobian::factor(
            &parts,
            LinearSolverKind::GmresIlu0 {
                restart: 60,
                max_iters: 500,
                rtol: 1e-12,
            },
            0.0,
        )
        .unwrap()
        .solve_in_place(&mut gmres_sol, 0.0)
        .unwrap();

        for i in 0..rhs.len() {
            assert!(
                (dense_sol[i] - sparse_sol[i]).abs() < 1e-8,
                "sparse mismatch at {i}: {} vs {}",
                dense_sol[i],
                sparse_sol[i]
            );
            assert!(
                (dense_sol[i] - gmres_sol[i]).abs() < 1e-6,
                "gmres mismatch at {i}: {} vs {}",
                dense_sol[i],
                gmres_sol[i]
            );
        }
    }

    #[test]
    fn unbordered_assembly() {
        let vdp = VanDerPol::unforced(0.3);
        let colloc = Colloc::new(2, 2);
        let len = colloc.len();
        let x = vec![0.5; len];
        let mut cblocks = Vec::new();
        let mut gblocks = Vec::new();
        for s in 0..colloc.n0 {
            let xs = &x[s * 2..s * 2 + 2];
            let mut c = DMat::zeros(2, 2);
            let mut g = DMat::zeros(2, 2);
            vdp.jac_q(xs, &mut c);
            vdp.jac_f(xs, &mut g);
            cblocks.push(c);
            gblocks.push(g);
        }
        let parts = JacobianParts {
            colloc: &colloc,
            cblocks: &cblocks,
            gblocks: &gblocks,
            inv_h: 5.0,
            theta: 1.0,
            omega: 0.7,
            border: None,
        };
        assert_eq!(parts.dim(), len);
        let rhs = vec![1.0; len];
        let mut a = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::Dense, 0.0)
            .unwrap()
            .solve_in_place(&mut a, 0.0)
            .unwrap();
        let mut b = rhs;
        FactoredJacobian::factor(&parts, LinearSolverKind::SparseLu, 0.0)
            .unwrap()
            .solve_in_place(&mut b, 0.0)
            .unwrap();
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-9);
        }
    }
}
