//! Thin adapter over the workspace-wide `linsolve` crate.
//!
//! The bordered collocation solver layer (block Jacobian description,
//! dense/sparse-LU/GMRES+ILU(0) backends) used to live here; it now
//! serves *all* solver crates from `crates/linsolve`. This module
//! re-exports the shared types and provides the error-mapping helpers the
//! WaMPDE envelope uses ([`WampdeError::LinearSolve`] carries the slow
//! time of the failure).

use crate::error::WampdeError;
pub use ::linsolve::{
    resolve_thread_count, BlockCirculantPrecond, CoreBudget, CoreBudgetGuard, CoreLease,
    CyclicShape, FactoredJacobian, JacobianParts, LinSolveError, LinearSolverKind, NewtonMatrix,
};
use hb::Colloc;

/// Builds the shared-layer [`JacobianParts`] for a collocation core.
///
/// The argument list mirrors the WaMPDE step structure one-to-one; see
/// [`JacobianParts`] for the meaning of each coefficient.
#[allow(clippy::too_many_arguments)]
pub fn colloc_parts<'a>(
    colloc: &'a Colloc,
    cblocks: &'a [numkit::DMat],
    gblocks: &'a [numkit::DMat],
    inv_h: f64,
    theta: f64,
    omega: f64,
    border: Option<(&'a [f64], &'a [f64])>,
) -> JacobianParts<'a> {
    JacobianParts {
        n: colloc.n,
        n0: colloc.n0,
        dmat: &colloc.dmat,
        cblocks,
        gblocks,
        inv_h,
        theta,
        omega,
        border,
    }
}

/// Factors the described Jacobian, mapping failures into
/// [`WampdeError::LinearSolve`] tagged with the slow time `at_t2`.
///
/// # Errors
///
/// [`WampdeError::LinearSolve`] when the factorisation fails.
pub fn factor(
    parts: &JacobianParts<'_>,
    kind: LinearSolverKind,
    at_t2: f64,
) -> Result<FactoredJacobian, WampdeError> {
    FactoredJacobian::factor(parts, kind).map_err(|e| WampdeError::LinearSolve {
        at_t2,
        cause: e.cause,
    })
}

/// Solves `J·x = rhs` in place with the same error mapping as [`factor`].
///
/// # Errors
///
/// [`WampdeError::LinearSolve`] when the backend fails (e.g. GMRES
/// stagnates).
pub fn solve_in_place(
    factored: &FactoredJacobian,
    rhs: &mut [f64],
    at_t2: f64,
) -> Result<(), WampdeError> {
    factored
        .solve_in_place(rhs)
        .map_err(|e| WampdeError::LinearSolve {
            at_t2,
            cause: e.cause,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::analytic::VanDerPol;
    use circuitdae::{circuits, Dae};
    use numkit::DMat;

    /// Per-sample Jacobian blocks of `dae` at a smooth synthetic state.
    fn blocks_at_synthetic_state<D: Dae>(dae: &D, colloc: &Colloc) -> (Vec<DMat>, Vec<DMat>) {
        let x: Vec<f64> = (0..colloc.len()).map(|k| (0.37 * k as f64).sin()).collect();
        circuitdae::jac_blocks(dae, &x)
    }

    /// Builds bordered vdP JacobianParts and checks all three backends
    /// produce the same solution through the wampde error adapter.
    #[test]
    fn backends_agree() {
        let vdp = VanDerPol::unforced(0.8);
        let colloc = Colloc::new(2, 3);
        let len = colloc.len();
        let (cblocks, gblocks) = blocks_at_synthetic_state(&vdp, &colloc);
        let row: Vec<f64> = colloc.phase_row(0, 1);
        let col: Vec<f64> = (0..len).map(|i| 0.1 + (i as f64 * 0.11).cos()).collect();
        let parts = colloc_parts(
            &colloc,
            &cblocks,
            &gblocks,
            10.0,
            0.5,
            1.3,
            Some((&row, &col)),
        );
        let rhs: Vec<f64> = (0..parts.dim())
            .map(|i| ((i * 3 % 7) as f64) - 3.0)
            .collect();

        let mut dense_sol = rhs.clone();
        solve_in_place(
            &factor(&parts, LinearSolverKind::Dense, 0.0).unwrap(),
            &mut dense_sol,
            0.0,
        )
        .unwrap();

        let mut sparse_sol = rhs.clone();
        solve_in_place(
            &factor(&parts, LinearSolverKind::SparseLu, 0.0).unwrap(),
            &mut sparse_sol,
            0.0,
        )
        .unwrap();

        let mut gmres_sol = rhs.clone();
        solve_in_place(
            &factor(
                &parts,
                LinearSolverKind::GmresIlu0 {
                    restart: 60,
                    max_iters: 500,
                    rtol: 1e-12,
                },
                0.0,
            )
            .unwrap(),
            &mut gmres_sol,
            0.0,
        )
        .unwrap();

        for i in 0..rhs.len() {
            assert!(
                (dense_sol[i] - sparse_sol[i]).abs() < 1e-8,
                "sparse mismatch at {i}: {} vs {}",
                dense_sol[i],
                sparse_sol[i]
            );
            assert!(
                (dense_sol[i] - gmres_sol[i]).abs() < 1e-6,
                "gmres mismatch at {i}: {} vs {}",
                dense_sol[i],
                gmres_sol[i]
            );
        }
    }

    /// The acceptance target of the solver-layer refactor: on the paper's
    /// LC VCO, dense and sparse-LU step solutions agree to 1e-9 (and
    /// GMRES at its default tolerance tracks them).
    #[test]
    fn lc_vco_dense_vs_sparse_agree_to_1e9() {
        let dae = circuits::lc_vco();
        let colloc = Colloc::new(dae.dim(), 5);
        let len = colloc.len();
        let (cblocks, gblocks) = blocks_at_synthetic_state(&dae, &colloc);
        let row: Vec<f64> = colloc.phase_row(0, 1);
        let col: Vec<f64> = (0..len).map(|i| 1e-9 * (0.2 * i as f64).cos()).collect();
        let parts = colloc_parts(
            &colloc,
            &cblocks,
            &gblocks,
            1.0 / 2.0e-6,
            1.0,
            0.75e6,
            Some((&row, &col)),
        );
        let rhs: Vec<f64> = (0..parts.dim()).map(|i| (0.3 * i as f64).sin()).collect();
        let mut dense = rhs.clone();
        solve_in_place(
            &factor(&parts, LinearSolverKind::Dense, 0.0).unwrap(),
            &mut dense,
            0.0,
        )
        .unwrap();
        let scale = dense.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let mut sparse = rhs.clone();
        solve_in_place(
            &factor(&parts, LinearSolverKind::SparseLu, 0.0).unwrap(),
            &mut sparse,
            0.0,
        )
        .unwrap();
        let mut gm = rhs.clone();
        solve_in_place(
            &factor(&parts, LinearSolverKind::gmres_default(), 0.0).unwrap(),
            &mut gm,
            0.0,
        )
        .unwrap();
        for i in 0..rhs.len() {
            assert!(
                (dense[i] - sparse[i]).abs() <= 1e-9 * scale.max(1.0),
                "sparse at {i}: {} vs {}",
                dense[i],
                sparse[i]
            );
            assert!(
                (dense[i] - gm[i]).abs() <= 1e-7 * scale.max(1.0),
                "gmres at {i}: {} vs {}",
                dense[i],
                gm[i]
            );
        }
    }

    #[test]
    fn unbordered_assembly() {
        let vdp = VanDerPol::unforced(0.3);
        let colloc = Colloc::new(2, 2);
        let len = colloc.len();
        let (cblocks, gblocks) = blocks_at_synthetic_state(&vdp, &colloc);
        let parts = colloc_parts(&colloc, &cblocks, &gblocks, 5.0, 1.0, 0.7, None);
        assert_eq!(parts.dim(), len);
        let rhs = vec![1.0; len];
        let mut a = rhs.clone();
        solve_in_place(
            &factor(&parts, LinearSolverKind::Dense, 0.0).unwrap(),
            &mut a,
            0.0,
        )
        .unwrap();
        let mut b = rhs;
        solve_in_place(
            &factor(&parts, LinearSolverKind::SparseLu, 0.0).unwrap(),
            &mut b,
            0.0,
        )
        .unwrap();
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn errors_carry_the_slow_time() {
        // A singular system must surface as LinearSolve tagged with t2.
        let colloc = Colloc::new(1, 1);
        let zeros = vec![DMat::zeros(1, 1); colloc.n0];
        let parts = colloc_parts(&colloc, &zeros, &zeros, 0.0, 1.0, 0.0, None);
        match factor(&parts, LinearSolverKind::Dense, 3.5) {
            Err(WampdeError::LinearSolve { at_t2, cause }) => {
                assert_eq!(at_t2, 3.5);
                assert!(!cause.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
