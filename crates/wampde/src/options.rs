//! Configuration of the WaMPDE solvers.

use transim::NewtonOptions;

/// Implicit scheme used along the slow (unwarped) time axis `t2`.
///
/// The envelope system is a semi-explicit DAE in which the local
/// frequency `ω(t2)` acts as a Lagrange multiplier enforcing the phase
/// constraint — an index-2-like structure. Methods that *average* the
/// instantaneous terms (trapezoidal) are known to ring on such
/// multipliers; fully implicit methods (BE, BDF2) are clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum T2Integrator {
    /// First order, L-stable, fully implicit — the robust fallback.
    BackwardEuler,
    /// Second order, A-stable, but averages the instantaneous terms:
    /// exhibits period-2 ringing (and at tight tolerances, step-control
    /// collapse) of `ω(t2)`. Kept for the integrator ablation.
    Trapezoidal,
    /// Second order, fully implicit two-step BDF (variable-step
    /// coefficients, Backward-Euler start) — the default: second-order
    /// envelope accuracy without multiplier ringing.
    #[default]
    Bdf2,
}

impl T2Integrator {
    /// Classical order of accuracy (used by the step controller).
    pub fn order(&self) -> usize {
        match self {
            T2Integrator::BackwardEuler => 1,
            T2Integrator::Trapezoidal | T2Integrator::Bdf2 => 2,
        }
    }
}

/// Slow-time step policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum T2StepControl {
    /// Constant `t2` step.
    Fixed(f64),
    /// Predictor–corrector LTE control on the envelope unknowns.
    Adaptive {
        /// Relative tolerance.
        rtol: f64,
        /// Absolute tolerance.
        atol: f64,
        /// Initial step (`0.0` = auto: span/200).
        dt_init: f64,
        /// Minimum step (`0.0` = auto: span·1e-9).
        dt_min: f64,
        /// Maximum step (`0.0` = auto: span/20).
        dt_max: f64,
    },
}

impl Default for T2StepControl {
    fn default() -> Self {
        T2StepControl::Adaptive {
            rtol: 1e-4,
            atol: 1e-9,
            dt_init: 0.0,
            dt_min: 0.0,
            dt_max: 0.0,
        }
    }
}

/// How the local frequency unknown is treated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum OmegaMode {
    /// `ω(t2)` is a solver unknown pinned by the phase condition — the
    /// WaMPDE proper.
    #[default]
    Free,
    /// `ω` is frozen at a constant and the phase condition is dropped —
    /// this degenerates to the *unwarped* MPDE applied to an autonomous
    /// system, the formulation the paper shows cannot represent FM
    /// compactly. Kept for the ablation benches.
    Frozen(f64),
}

/// Which linear solver factors the per-step bordered Jacobian.
///
/// Re-exported from the workspace-wide `linsolve` crate: the same switch
/// selects backends for every solver (transient, shooting, HB, MPDE).
pub use ::linsolve::LinearSolverKind;

/// Options for [`crate::solve_envelope`] / [`crate::solve_quasiperiodic`].
#[derive(Debug, Clone, Copy)]
pub struct WampdeOptions {
    /// Harmonic count `M` along the warped axis (`N0 = 2M+1` samples).
    pub harmonics: usize,
    /// Scheme along `t2`.
    pub integrator: T2Integrator,
    /// Slow-time step policy.
    pub step: T2StepControl,
    /// Inner Newton options.
    pub newton: NewtonOptions,
    /// Phase-condition variable `k` (an unknown that actually oscillates —
    /// typically the tank voltage).
    pub phase_var: usize,
    /// Phase-condition harmonic `l ≥ 1`.
    pub phase_harmonic: usize,
    /// Local-frequency treatment.
    pub omega_mode: OmegaMode,
    /// Linear solver for the bordered collocation Jacobian.
    pub linear_solver: LinearSolverKind,
}

impl Default for WampdeOptions {
    fn default() -> Self {
        WampdeOptions {
            harmonics: 8,
            integrator: T2Integrator::default(),
            step: T2StepControl::default(),
            newton: NewtonOptions::default(),
            phase_var: 0,
            phase_harmonic: 1,
            omega_mode: OmegaMode::default(),
            linear_solver: LinearSolverKind::default(),
        }
    }
}

impl WampdeOptions {
    /// Collocation sample count `N0 = 2M+1`.
    pub fn n0(&self) -> usize {
        2 * self.harmonics + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = WampdeOptions::default();
        assert_eq!(o.n0(), 17);
        assert_eq!(o.phase_harmonic, 1);
        assert!(matches!(o.omega_mode, OmegaMode::Free));
        assert!(matches!(o.linear_solver, LinearSolverKind::Dense));
    }
}
