//! Configuration of the WaMPDE solvers.

use transim::NewtonOptions;

/// Implicit scheme used along the slow (unwarped) time axis `t2` — a
/// re-export of the shared [`timekit::Scheme`] table (the same engine
/// steps `transim` transients and the MPDE envelope).
///
/// The envelope system is a semi-explicit DAE in which the local
/// frequency `ω(t2)` acts as a Lagrange multiplier enforcing the phase
/// constraint — an index-2-like structure. Methods that *average* the
/// instantaneous terms (trapezoidal) are known to ring on such
/// multipliers; fully implicit methods (BE, BDF2) are clean, which is
/// why [`WampdeOptions::default`] selects BDF2 rather than the scheme
/// table's own transient-oriented default.
///
/// **Breaking note:** because the type is now shared,
/// `T2Integrator::default()` follows the table's transient convention
/// (Trapezoidal), *not* the historical wampde default (BDF2). Build
/// envelope options through [`WampdeOptions::default`] — which pins
/// BDF2 — rather than from `T2Integrator::default()` directly.
pub use timekit::Scheme as T2Integrator;

/// Slow-time step policy — a re-export of the shared
/// [`timekit::StepPolicy`]: `Fixed(dt)` or predictor–corrector LTE
/// control with the canonical `0.0 = auto` bound resolution.
///
/// **Breaking note:** `T2StepControl::default()` now follows the
/// shared transient convention (`rtol = 1e-6`, `atol = 1e-12`), *not*
/// the historical wampde default. [`WampdeOptions::default`] pins the
/// envelope-accuracy tolerances (`rtol = 1e-4`, `atol = 1e-9`) — build
/// options through it, or with [`timekit::StepPolicy::adaptive`].
pub use timekit::StepPolicy as T2StepControl;

/// How the local frequency unknown is treated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum OmegaMode {
    /// `ω(t2)` is a solver unknown pinned by the phase condition — the
    /// WaMPDE proper.
    #[default]
    Free,
    /// `ω` is frozen at a constant and the phase condition is dropped —
    /// this degenerates to the *unwarped* MPDE applied to an autonomous
    /// system, the formulation the paper shows cannot represent FM
    /// compactly. Kept for the ablation benches.
    Frozen(f64),
}

/// Which linear solver factors the per-step bordered Jacobian.
///
/// Re-exported from the workspace-wide `linsolve` crate: the same switch
/// selects backends for every solver (transient, shooting, HB, MPDE).
pub use ::linsolve::LinearSolverKind;

/// Options for [`crate::solve_envelope`] / [`crate::solve_quasiperiodic`].
#[derive(Debug, Clone, Copy)]
pub struct WampdeOptions {
    /// Harmonic count `M` along the warped axis (`N0 = 2M+1` samples).
    pub harmonics: usize,
    /// Scheme along `t2`.
    pub integrator: T2Integrator,
    /// Slow-time step policy.
    pub step: T2StepControl,
    /// Inner Newton options.
    pub newton: NewtonOptions,
    /// Phase-condition variable `k` (an unknown that actually oscillates —
    /// typically the tank voltage).
    pub phase_var: usize,
    /// Phase-condition harmonic `l ≥ 1`.
    pub phase_harmonic: usize,
    /// Local-frequency treatment.
    pub omega_mode: OmegaMode,
    /// Linear solver for the bordered collocation Jacobian.
    pub linear_solver: LinearSolverKind,
}

impl Default for WampdeOptions {
    fn default() -> Self {
        WampdeOptions {
            harmonics: 8,
            // BDF2: second-order envelope accuracy without multiplier
            // ringing (see the T2Integrator re-export docs).
            integrator: T2Integrator::Bdf2,
            step: T2StepControl::adaptive(1e-4, 1e-9),
            newton: NewtonOptions::default(),
            phase_var: 0,
            phase_harmonic: 1,
            omega_mode: OmegaMode::default(),
            linear_solver: LinearSolverKind::default(),
        }
    }
}

impl WampdeOptions {
    /// Collocation sample count `N0 = 2M+1`.
    pub fn n0(&self) -> usize {
        2 * self.harmonics + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = WampdeOptions::default();
        assert_eq!(o.n0(), 17);
        assert_eq!(o.phase_harmonic, 1);
        assert!(matches!(o.omega_mode, OmegaMode::Free));
        assert!(matches!(o.linear_solver, LinearSolverKind::Dense));
        assert_eq!(o.integrator, T2Integrator::Bdf2);
        match o.step {
            T2StepControl::Adaptive { rtol, atol, .. } => {
                assert_eq!(rtol, 1e-4);
                assert_eq!(atol, 1e-9);
            }
            other => panic!("unexpected default step policy {other:?}"),
        }
    }
}
