//! Quasiperiodic (periodic-boundary) WaMPDE solver.
//!
//! With `b(t2)` periodic of period `T2`, seeking `x̂` `(1, T2)`-periodic
//! and `ω(t2)` `T2`-periodic turns eqs. (19)–(20) into a boundary-value
//! problem (paper §4.1): `N1` collocation slices along `t2`, each carrying
//! `n·N0` warped-axis samples plus its own local frequency and phase
//! condition, closed cyclically by the `t2` difference stencil. One global
//! Newton solve yields FM-quasiperiodic steady states directly; mode
//! locking (`ω0 = ω2`) and period multiplication (`ω0 = ω2/k`) emerge as
//! special cases of the converged `ω(t2)`.
//!
//! The Jacobian is block-cyclic-bidiagonal and is solved through the
//! shared `linsolve` layer. A dense solve would be O((N1·n·N0)³), so the
//! default `Dense` backend selection is promoted to sparse LU here;
//! `GmresIlu0` is honored as-is.

use crate::error::WampdeError;
use crate::linsolve::LinearSolverKind;
use crate::options::WampdeOptions;
use crate::result::EnvelopeResult;
use circuitdae::Dae;
use hb::Colloc;
use newtonkit::{NewtonEngine, NewtonError, NewtonPolicy, NewtonSystem};
use numkit::DMat;
use sparsekit::Triplets;
use std::cell::RefCell;

/// Initial guess for the quasiperiodic solve: `N1` slices of stacked
/// samples plus per-slice frequencies.
#[derive(Debug, Clone)]
pub struct QpInit {
    /// Per-slice stacked collocation states (`n·N0` each).
    pub slices: Vec<Vec<f64>>,
    /// Per-slice local frequencies (Hz).
    pub omegas: Vec<f64>,
}

impl QpInit {
    /// Builds an initial guess by sampling a settled envelope run over its
    /// final `t2_period`: slice `m` is taken at
    /// `t_end − T2 + m·T2/N1` (linear interpolation between envelope
    /// points).
    ///
    /// # Panics
    ///
    /// Panics when the envelope is shorter than one period or has fewer
    /// than two points.
    pub fn from_envelope(env: &EnvelopeResult, t2_period: f64, n1: usize) -> Self {
        assert!(env.len() >= 2, "envelope too short");
        let t_end = *env.t2.last().expect("nonempty");
        assert!(
            t_end >= t2_period,
            "envelope must cover at least one t2 period"
        );
        let t_start = t_end - t2_period;
        let len = env.states[0].len();
        let mut slices = Vec::with_capacity(n1);
        let mut omegas = Vec::with_capacity(n1);
        for m in 0..n1 {
            let t = t_start + t2_period * m as f64 / n1 as f64;
            // Linear interpolation of the stacked state.
            let i = env
                .t2
                .partition_point(|&v| v <= t)
                .saturating_sub(1)
                .min(env.len() - 2);
            let w = ((t - env.t2[i]) / (env.t2[i + 1] - env.t2[i])).clamp(0.0, 1.0);
            let mut x = vec![0.0; len];
            for (k, xv) in x.iter_mut().enumerate() {
                *xv = env.states[i][k] * (1.0 - w) + env.states[i + 1][k] * w;
            }
            slices.push(x);
            omegas.push(env.omega_at(t));
        }
        QpInit { slices, omegas }
    }

    /// Replicates a single orbit (samples + frequency) across `n1` slices —
    /// the natural guess when the forcing modulation is weak.
    pub fn from_constant(stacked: Vec<f64>, freq_hz: f64, n1: usize) -> Self {
        QpInit {
            slices: vec![stacked; n1],
            omegas: vec![freq_hz; n1],
        }
    }
}

/// A converged quasiperiodic WaMPDE solution.
#[derive(Debug, Clone)]
pub struct QuasiPeriodicSolution {
    /// DAE dimension.
    pub n: usize,
    /// Warped-axis sample count.
    pub n0: usize,
    /// Slice count along `t2`.
    pub n1: usize,
    /// The slow period `T2`.
    pub t2_period: f64,
    /// Per-slice stacked samples.
    pub slices: Vec<Vec<f64>>,
    /// Per-slice local frequencies `ω(t2_m)` (Hz).
    pub omegas: Vec<f64>,
    /// Newton iterations used.
    pub iterations: usize,
}

impl QuasiPeriodicSolution {
    /// Mean local frequency `ω0` (the paper's eq. (21) decomposition
    /// `ω(t2) = ω0 + p'(t2)`).
    pub fn omega0(&self) -> f64 {
        self.omegas.iter().sum::<f64>() / self.omegas.len() as f64
    }

    /// Extremes of the periodic local frequency.
    pub fn frequency_range(&self) -> (f64, f64) {
        let lo = self.omegas.iter().fold(f64::INFINITY, |m, v| m.min(*v));
        let hi = self.omegas.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v));
        (lo, hi)
    }

    /// Samples of one variable at one slice.
    ///
    /// # Panics
    ///
    /// Panics when indices are out of range.
    pub fn var_samples(&self, slice: usize, var: usize) -> Vec<f64> {
        assert!(var < self.n);
        let x = &self.slices[slice];
        (0..self.n0).map(|s| x[s * self.n + var]).collect()
    }

    /// Local frequency at an arbitrary time (`ω` is `T2`-periodic;
    /// piecewise-linear through the slice values).
    pub fn omega_at(&self, t: f64) -> f64 {
        let h = self.t2_period / self.n1 as f64;
        let u = t.rem_euclid(self.t2_period) / h;
        let m = (u.floor() as usize).min(self.n1 - 1);
        let w = u - u.floor();
        let a = self.omegas[m];
        let b = self.omegas[(m + 1) % self.n1];
        a * (1.0 - w) + b * w
    }

    /// Warping function `φ(t) = ∫₀ᵗ ω` in cycles, using the paper's
    /// eq. (22) decomposition: a linear ramp `ω0·t` plus a `T2`-periodic
    /// part integrated piecewise (quadratic within slices).
    pub fn phi_at(&self, t: f64) -> f64 {
        let h = self.t2_period / self.n1 as f64;
        // Cumulative trapezoid over one period.
        let mut cum = Vec::with_capacity(self.n1 + 1);
        cum.push(0.0);
        for m in 0..self.n1 {
            let a = self.omegas[m];
            let b = self.omegas[(m + 1) % self.n1];
            cum.push(cum[m] + 0.5 * h * (a + b));
        }
        let full = cum[self.n1];
        let periods = (t / self.t2_period).floor();
        let tau = t - periods * self.t2_period;
        let u = tau / h;
        let m = (u.floor() as usize).min(self.n1 - 1);
        let frac = tau - m as f64 * h;
        let a = self.omegas[m];
        let b = self.omegas[(m + 1) % self.n1];
        let slope = (b - a) / h;
        periods * full + cum[m] + a * frac + 0.5 * slope * frac * frac
    }

    /// Reconstructs the univariate quasiperiodic solution
    /// `x(t) = x̂(φ(t), t)` of one variable at the given times (trig
    /// interpolation along the warped axis, linear along the periodic
    /// slow axis).
    ///
    /// # Panics
    ///
    /// Panics when `var >= n`.
    pub fn reconstruct(&self, var: usize, ts: &[f64]) -> Vec<f64> {
        assert!(var < self.n, "variable index out of range");
        let h = self.t2_period / self.n1 as f64;
        let mut samples = vec![0.0; self.n0];
        ts.iter()
            .map(|&t| {
                let u = t.rem_euclid(self.t2_period) / h;
                let m = (u.floor() as usize).min(self.n1 - 1);
                let w = u - u.floor();
                let xa = &self.slices[m];
                let xb = &self.slices[(m + 1) % self.n1];
                for (s, slot) in samples.iter_mut().enumerate() {
                    let k = s * self.n + var;
                    *slot = xa[k] * (1.0 - w) + xb[k] * w;
                }
                let phase = self.phi_at(t).rem_euclid(1.0);
                fourier::interp::trig_interp_barycentric(&samples, phase)
            })
            .collect()
    }
}

/// Solves the quasiperiodic WaMPDE with `n1` periodic slices over one
/// period `t2_period` of the forcing.
///
/// # Errors
///
/// See [`WampdeError`]. The initial guess must be near the quasiperiodic
/// attractor — in practice, hand over a settled envelope run via
/// [`QpInit::from_envelope`].
pub fn solve_quasiperiodic<D: Dae + ?Sized>(
    dae: &D,
    init: &QpInit,
    t2_period: f64,
    opts: &WampdeOptions,
) -> Result<QuasiPeriodicSolution, WampdeError> {
    let n = dae.dim();
    let colloc = Colloc::new(n, opts.harmonics);
    let len = colloc.len();
    let n1 = init.slices.len();
    if n1 < 3 {
        return Err(WampdeError::BadInput("need at least 3 t2 slices".into()));
    }
    if init.omegas.len() != n1 {
        return Err(WampdeError::BadInput(
            "omegas/slices length mismatch".into(),
        ));
    }
    if init.slices.iter().any(|s| s.len() != len) {
        return Err(WampdeError::BadInput(format!(
            "each slice must have n·N0 = {len} entries"
        )));
    }
    // `partial_cmp` keeps the NaN-rejecting behavior of `!(period > 0.0)`.
    if t2_period.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(WampdeError::BadInput("t2 period must be positive".into()));
    }

    // Cyclic difference stencil (uniform h): coefficients (c0, c1, c2)
    // of q_m, q_{m-1}, q_{m-2} and the instantaneous weight θ, from the
    // shared timekit scheme table.
    let (c0, c1, c2, theta) = opts.integrator.cyclic_stencil();
    let h = t2_period / n1 as f64;
    let bw = len + 1; // unknowns per slice: X_m then ω_m
    let dim = n1 * bw;

    let phase_row = colloc.phase_row(opts.phase_var, opts.phase_harmonic);

    // Pack initial z.
    let mut z = vec![0.0; dim];
    for m in 0..n1 {
        z[m * bw..m * bw + len].copy_from_slice(&init.slices[m]);
        z[m * bw + len] = init.omegas[m];
    }

    // Forcing per slice.
    let mut b_slices = vec![vec![0.0; n]; n1];
    for (m, b) in b_slices.iter_mut().enumerate() {
        dae.eval_b(h * m as f64, b);
    }

    let sys = QpSystem {
        dae,
        colloc: &colloc,
        n1,
        h,
        c0,
        c1,
        c2,
        theta,
        b_slices: &b_slices,
        phase_row: &phase_row,
        work: RefCell::new(QpWork {
            qs: vec![vec![0.0; len]; n1],
            dqs: vec![vec![0.0; len]; n1],
            fs: vec![vec![0.0; len]; n1],
        }),
    };

    // The cyclic system is never dense-solved: `Dense` (the global
    // default) selects sparse LU; sparse backends pass through. One
    // global Newton solve — symbolic reuse spans its iterations.
    let kind = match opts.linear_solver {
        LinearSolverKind::Dense | LinearSolverKind::SparseLu => LinearSolverKind::SparseLu,
        gm @ (LinearSolverKind::Klu
        | LinearSolverKind::GmresIlu0 { .. }
        | LinearSolverKind::GmresCirculant { .. }) => gm,
    };
    let policy = NewtonPolicy {
        linear_solver: kind,
        ..opts.newton
    };
    let mut engine = NewtonEngine::new();
    match engine.solve(&sys, &mut z, &policy) {
        Ok(stats) => {
            let mut slices = Vec::with_capacity(n1);
            let mut omegas = Vec::with_capacity(n1);
            for m in 0..n1 {
                slices.push(z[m * bw..m * bw + len].to_vec());
                omegas.push(z[m * bw + len]);
            }
            Ok(QuasiPeriodicSolution {
                n,
                n0: colloc.n0,
                n1,
                t2_period,
                slices,
                omegas,
                iterations: stats.iterations,
            })
        }
        Err(NewtonError::Singular { cause }) => Err(WampdeError::LinearSolve { at_t2: 0.0, cause }),
        Err(NewtonError::NoConvergence {
            iterations,
            residual,
        }) => Err(WampdeError::NewtonFailed {
            at_t2: 0.0,
            iterations,
            residual,
        }),
        Err(NewtonError::BadInput(msg)) => Err(WampdeError::BadInput(msg)),
    }
}

/// Residual scratch of the quasiperiodic system.
struct QpWork {
    qs: Vec<Vec<f64>>,
    dqs: Vec<Vec<f64>>,
    fs: Vec<Vec<f64>>,
}

/// The global quasiperiodic boundary-value problem over
/// `z = [X_0, ω_0, X_1, ω_1, …]` (`len + 1` unknowns per slice, `n1`
/// slices closed cyclically by the `t2` stencil) as a shared-engine
/// [`NewtonSystem`] with the historical per-slice block-scaled update
/// norm.
struct QpSystem<'a, D: Dae + ?Sized> {
    dae: &'a D,
    colloc: &'a Colloc,
    n1: usize,
    h: f64,
    c0: f64,
    c1: f64,
    c2: f64,
    theta: f64,
    b_slices: &'a [Vec<f64>],
    phase_row: &'a [f64],
    work: RefCell<QpWork>,
}

impl<D: Dae + ?Sized> QpSystem<'_, D> {
    fn bw(&self) -> usize {
        self.colloc.len() + 1
    }
}

impl<D: Dae + ?Sized> NewtonSystem for QpSystem<'_, D> {
    fn dim(&self) -> usize {
        self.n1 * self.bw()
    }

    fn cyclic_shape(&self) -> Option<linsolve::CyclicShape> {
        // n1 slices coupled cyclically by the t2 stencil, each carrying
        // its collocation unknowns plus the local frequency — the shape
        // the block-circulant GMRES preconditioner diagonalises.
        Some(linsolve::CyclicShape {
            blocks: self.n1,
            block_dim: self.bw(),
        })
    }

    fn residual(&self, z: &[f64], out: &mut [f64]) {
        let (colloc, n1, bw, len) = (self.colloc, self.n1, self.bw(), self.colloc.len());
        let QpWork { qs, dqs, fs } = &mut *self.work.borrow_mut();
        for m in 0..n1 {
            let x = &z[m * bw..m * bw + len];
            colloc.eval_q_all(self.dae, x, &mut qs[m]);
            colloc.eval_f_all(self.dae, x, &mut fs[m]);
        }
        for m in 0..n1 {
            let q = std::mem::take(&mut qs[m]);
            colloc.apply_diff(&q, &mut dqs[m]);
            qs[m] = q;
        }
        for m in 0..n1 {
            let prev = (m + n1 - 1) % n1;
            let prev2 = (m + n1 - 2) % n1;
            let om = z[m * bw + len];
            let om_prev = z[prev * bw + len];
            for s in 0..colloc.n0 {
                for (i, (bm, bp)) in self.b_slices[m]
                    .iter()
                    .zip(self.b_slices[prev].iter())
                    .enumerate()
                {
                    let k = colloc.idx(s, i);
                    let g_m = om * dqs[m][k] + fs[m][k] - bm;
                    let g_p = om_prev * dqs[prev][k] + fs[prev][k] - bp;
                    out[m * bw + k] =
                        (self.c0 * qs[m][k] + self.c1 * qs[prev][k] + self.c2 * qs[prev2][k])
                            / self.h
                            + self.theta * g_m
                            + (1.0 - self.theta) * g_p;
                }
            }
            let x = &z[m * bw..m * bw + len];
            out[m * bw + len] = self
                .phase_row
                .iter()
                .zip(x.iter())
                .map(|(a, b)| a * b)
                .sum();
        }
    }

    fn jacobian(&self, z: &[f64], out: &mut DMat) {
        // The cyclic solve always runs a sparse backend; the dense stamp
        // exists for API completeness only.
        let mut trip = Triplets::new(self.dim(), self.dim());
        self.jacobian_triplets(z, &mut trip);
        let dense = trip.to_csc().to_dense();
        out.fill_zero();
        for i in 0..self.dim() {
            for j in 0..self.dim() {
                out[(i, j)] = dense[(i, j)];
            }
        }
    }

    fn jacobian_triplets(&self, z: &[f64], trip: &mut Triplets) -> bool {
        let (colloc, n1, bw, len, n) = (
            self.colloc,
            self.n1,
            self.bw(),
            self.colloc.len(),
            self.colloc.n,
        );
        // Per-slice Jacobian blocks and dq at the iterate (for the ω
        // columns).
        let mut cblocks: Vec<Vec<DMat>> = vec![Vec::new(); n1];
        let mut gblocks: Vec<Vec<DMat>> = vec![Vec::new(); n1];
        for m in 0..n1 {
            let x = &z[m * bw..m * bw + len];
            for s in 0..colloc.n0 {
                let xs = &x[s * n..(s + 1) * n];
                let mut c = DMat::zeros(n, n);
                let mut g = DMat::zeros(n, n);
                self.dae.jac_q(xs, &mut c);
                self.dae.jac_f(xs, &mut g);
                cblocks[m].push(c);
                gblocks[m].push(g);
            }
        }
        let QpWork { qs, dqs, .. } = &mut *self.work.borrow_mut();
        for m in 0..n1 {
            let x = &z[m * bw..m * bw + len];
            colloc.eval_q_all(self.dae, x, &mut qs[m]);
            let q = std::mem::take(&mut qs[m]);
            colloc.apply_diff(&q, &mut dqs[m]);
            qs[m] = q;
        }

        for m in 0..n1 {
            let prev = (m + n1 - 1) % n1;
            let prev2 = (m + n1 - 2) % n1;
            let om = z[m * bw + len];
            let om_prev = z[prev * bw + len];
            let row0 = m * bw;
            // ∂/∂X_m: c0·C_m/h + θ(ω_m D⊗C_m + G_m).
            add_slice_block(
                trip,
                colloc,
                row0,
                m * bw,
                &cblocks[m],
                &gblocks[m],
                self.c0 / self.h,
                self.theta,
                om,
            );
            // ∂/∂X_prev: c1·C_prev/h + (1−θ)(ω_prev D⊗C_prev + G_prev).
            add_slice_block(
                trip,
                colloc,
                row0,
                prev * bw,
                &cblocks[prev],
                &gblocks[prev],
                self.c1 / self.h,
                1.0 - self.theta,
                om_prev,
            );
            // ∂/∂X_prev2: c2·C_prev2/h (BDF2 only).
            if self.c2 != 0.0 {
                add_slice_block(
                    trip,
                    colloc,
                    row0,
                    prev2 * bw,
                    &cblocks[prev2],
                    &gblocks[prev2],
                    self.c2 / self.h,
                    0.0,
                    0.0,
                );
            }
            // ω columns.
            for (k, (dm, dp)) in dqs[m].iter().zip(dqs[prev].iter()).enumerate() {
                let v = self.theta * dm;
                if v != 0.0 {
                    trip.push(row0 + k, m * bw + len, v);
                }
                let vp = (1.0 - self.theta) * dp;
                if vp != 0.0 {
                    trip.push(row0 + k, prev * bw + len, vp);
                }
            }
            // Phase row.
            for (k, &c) in self.phase_row.iter().enumerate() {
                if c != 0.0 {
                    trip.push(row0 + len, m * bw + k, c);
                }
            }
        }
        true
    }

    /// Block-scaled update norm: samples weighted by the global sample
    /// magnitude, each ω by its own (see `envelope::block_update_norm`).
    fn update_norm(&self, dx_scaled: &[f64], z: &[f64], abstol: f64, reltol: f64) -> f64 {
        let (n1, bw, len) = (self.n1, self.bw(), self.colloc.len());
        let x_scale = (0..n1)
            .flat_map(|m| z[m * bw..m * bw + len].iter())
            .fold(0.0_f64, |mx, v| mx.max(v.abs()))
            .max(1e-300);
        let wx = abstol + reltol * x_scale;
        let mut acc = 0.0;
        for m in 0..n1 {
            for k in 0..len {
                let e = dx_scaled[m * bw + k] / wx;
                acc += e * e;
            }
            let womega = abstol + reltol * z[m * bw + len].abs().max(1e-300);
            let e = dx_scaled[m * bw + len] / womega;
            acc += e * e;
        }
        (acc / self.dim() as f64).sqrt()
    }
}

/// Adds `coef_c·C_s + w·(ω·D[s,s']·C_{s'} + δ·G_s)` block rows for one
/// slice pair into the triplet buffer.
// The argument list mirrors the stencil coefficients one-to-one; bundling
// them into a struct would obscure the correspondence.
#[allow(clippy::too_many_arguments)]
fn add_slice_block(
    trip: &mut Triplets,
    colloc: &Colloc,
    row0: usize,
    col0: usize,
    cblocks: &[DMat],
    gblocks: &[DMat],
    coef_c: f64,
    weight: f64,
    omega: f64,
) {
    let n = colloc.n;
    for s in 0..colloc.n0 {
        let c = &cblocks[s];
        let g = &gblocks[s];
        for i in 0..n {
            for j in 0..n {
                let v = coef_c * c[(i, j)] + weight * g[(i, j)];
                if v != 0.0 {
                    trip.push(row0 + colloc.idx(s, i), col0 + colloc.idx(s, j), v);
                }
            }
        }
    }
    if weight != 0.0 {
        for s in 0..colloc.n0 {
            for (sp, c) in cblocks.iter().enumerate().take(colloc.n0) {
                let d = weight * omega * colloc.dmat[(s, sp)];
                if d == 0.0 {
                    continue;
                }
                for i in 0..n {
                    for j in 0..n {
                        let v = d * c[(i, j)];
                        if v != 0.0 {
                            trip.push(row0 + colloc.idx(s, i), col0 + colloc.idx(sp, j), v);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::WampdeInit;
    use circuitdae::circuits::{self, MemsVcoConfig};
    use shooting::{oscillator_steady_state, ShootingOptions};

    #[test]
    fn unforced_vco_gives_flat_omega() {
        // With constant control the quasiperiodic solution at any T2 is the
        // steady orbit repeated on every slice, ω(t2) ≡ f0.
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let opts = crate::WampdeOptions {
            harmonics: 5,
            ..Default::default()
        };
        let winit = WampdeInit::from_orbit(&orbit, &opts);
        let init = QpInit::from_constant(winit.stacked(), winit.freq_hz, 8);
        let sol = solve_quasiperiodic(&dae, &init, 4.0e-5, &opts).unwrap();
        let f0 = orbit.frequency();
        for &w in &sol.omegas {
            assert!((w - f0).abs() / f0 < 1e-3, "omega {w} vs {f0}");
        }
        assert!((sol.omega0() - f0).abs() / f0 < 1e-3);
    }

    #[test]
    fn gmres_backend_matches_sparse_lu() {
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let base = crate::WampdeOptions {
            harmonics: 4,
            ..Default::default()
        };
        let winit = WampdeInit::from_orbit(&orbit, &base);
        let init = QpInit::from_constant(winit.stacked(), winit.freq_hz, 6);
        let sparse = solve_quasiperiodic(&dae, &init, 4.0e-5, &base).unwrap();
        let gm_opts = crate::WampdeOptions {
            linear_solver: crate::LinearSolverKind::gmres_default(),
            ..base
        };
        let gm = solve_quasiperiodic(&dae, &init, 4.0e-5, &gm_opts).unwrap();
        for (a, b) in sparse.omegas.iter().zip(gm.omegas.iter()) {
            assert!((a - b).abs() / a < 1e-6, "{a} vs {b}");
        }
    }

    /// The KLU and circulant-preconditioned GMRES backends pass through
    /// the quasiperiodic solver-promotion untouched and land on the
    /// sparse-LU answer — the circulant path exercises the full
    /// `QpSystem::cyclic_shape()` → `FactorCache` →
    /// `BlockCirculantPrecond` wiring on a real cyclic Jacobian.
    #[test]
    fn klu_and_circulant_backends_match_sparse_lu() {
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let base = crate::WampdeOptions {
            harmonics: 4,
            ..Default::default()
        };
        let winit = WampdeInit::from_orbit(&orbit, &base);
        let init = QpInit::from_constant(winit.stacked(), winit.freq_hz, 6);
        let sparse = solve_quasiperiodic(&dae, &init, 4.0e-5, &base).unwrap();
        for kind in [
            crate::LinearSolverKind::Klu,
            crate::LinearSolverKind::gmres_circulant_default(),
        ] {
            let opts = crate::WampdeOptions {
                linear_solver: kind,
                ..base
            };
            let got = solve_quasiperiodic(&dae, &init, 4.0e-5, &opts).unwrap();
            for (a, b) in sparse.omegas.iter().zip(got.omegas.iter()) {
                assert!((a - b).abs() / a < 1e-6, "{kind:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let cfg = MemsVcoConfig::constant(1.5);
        let dae = circuits::mems_vco(cfg);
        let opts = crate::WampdeOptions::default();
        let too_few = QpInit {
            slices: vec![vec![0.0; opts.n0() * 4]; 2],
            omegas: vec![1.0; 2],
        };
        assert!(solve_quasiperiodic(&dae, &too_few, 1.0, &opts).is_err());
        let mismatched = QpInit {
            slices: vec![vec![0.0; 5]; 4],
            omegas: vec![1.0; 4],
        };
        assert!(solve_quasiperiodic(&dae, &mismatched, 1.0, &opts).is_err());
    }

    /// Synthetic flat solution for exercising the post-processing without
    /// a solver run: one variable, cos(2πt1) on every slice, constant ω.
    fn synthetic_qp(n1: usize, omega: f64, t2: f64) -> QuasiPeriodicSolution {
        let n0 = 9;
        let slice: Vec<f64> = (0..n0)
            .map(|s| (2.0 * std::f64::consts::PI * s as f64 / n0 as f64).cos())
            .collect();
        QuasiPeriodicSolution {
            n: 1,
            n0,
            n1,
            t2_period: t2,
            slices: vec![slice; n1],
            omegas: vec![omega; n1],
            iterations: 1,
        }
    }

    #[test]
    fn phi_of_constant_omega_is_linear() {
        let qp = synthetic_qp(8, 5.0, 1.0);
        for &t in &[0.1, 0.37, 1.4, 2.9] {
            assert!((qp.phi_at(t) - 5.0 * t).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn reconstruct_constant_omega_is_pure_cosine() {
        let qp = synthetic_qp(8, 3.0, 1.0);
        let ts: Vec<f64> = (0..200).map(|k| k as f64 * 0.01).collect();
        let xs = qp.reconstruct(0, &ts);
        for (&t, &x) in ts.iter().zip(xs.iter()) {
            let want = (2.0 * std::f64::consts::PI * 3.0 * t).cos();
            assert!((x - want).abs() < 1e-8, "t={t}: {x} vs {want}");
        }
    }

    #[test]
    fn omega_at_interpolates_periodically() {
        let mut qp = synthetic_qp(4, 1.0, 2.0);
        qp.omegas = vec![1.0, 2.0, 3.0, 2.0];
        // Midpoint of the first slice interval.
        assert!((qp.omega_at(0.25) - 1.5).abs() < 1e-12);
        // Wraps: the last interval interpolates toward omegas[0].
        assert!((qp.omega_at(1.75) - 1.5).abs() < 1e-12);
        // Periodic extension.
        assert!((qp.omega_at(2.25) - qp.omega_at(0.25)).abs() < 1e-12);
    }
}
