//! Envelope-solution container: local frequency, bivariate surface,
//! warping function and univariate reconstruction.

/// Counters reported with an envelope run.
///
/// This is the workspace-wide [`obskit::RunStats`] summary (shared with
/// `transim::TransientStats` and `mpde::MpdeStats`); `steps`/`rejected`
/// count `t2` steps. The former `newton_iterations` field survives as a
/// deprecated accessor method.
pub type EnvelopeStats = obskit::RunStats;

/// Result of [`crate::solve_envelope`]: the bivariate solution
/// `x̂(t1, t2)` sampled along the envelope, the local frequency `ω(t2)`,
/// and the warping function `φ(t2) = ∫ω` (in *cycles* — the warped axis
/// has unit period).
#[derive(Debug, Clone)]
pub struct EnvelopeResult {
    /// DAE dimension.
    pub n: usize,
    /// Warped-axis sample count `N0`.
    pub n0: usize,
    /// Accepted slow-time points (starts at 0).
    pub t2: Vec<f64>,
    /// Local frequency (Hz) at each `t2` point — the paper's Figures 7/10.
    pub omega_hz: Vec<f64>,
    /// Warping function `φ(t2)` in cycles at each `t2` point.
    pub phi: Vec<f64>,
    /// Stacked collocation states (`n·N0`, sample-major) per `t2` point.
    pub states: Vec<Vec<f64>>,
    /// Run statistics.
    pub stats: EnvelopeStats,
}

impl EnvelopeResult {
    /// Minimum and maximum local frequency over the run.
    pub fn frequency_range(&self) -> (f64, f64) {
        let lo = self.omega_hz.iter().fold(f64::INFINITY, |m, v| m.min(*v));
        let hi = self
            .omega_hz
            .iter()
            .fold(f64::NEG_INFINITY, |m, v| m.max(*v));
        (lo, hi)
    }

    /// Samples of variable `var` at envelope point `idx` (length `N0`).
    ///
    /// # Panics
    ///
    /// Panics when `idx` or `var` is out of range.
    pub fn var_samples(&self, idx: usize, var: usize) -> Vec<f64> {
        assert!(var < self.n, "variable index out of range");
        let x = &self.states[idx];
        (0..self.n0).map(|s| x[s * self.n + var]).collect()
    }

    /// The bivariate surface `x̂(t1, t2)` of one variable:
    /// `(t1 grid, t2 grid, values[t2 index][t1 index])` — the data behind
    /// the paper's Figures 8 and 11.
    pub fn bivariate(&self, var: usize) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
        let t1: Vec<f64> = (0..self.n0).map(|s| s as f64 / self.n0 as f64).collect();
        let values: Vec<Vec<f64>> = (0..self.t2.len())
            .map(|idx| self.var_samples(idx, var))
            .collect();
        (t1, self.t2.clone(), values)
    }

    /// Mean over the warped axis (the DC Fourier component) of `var` at
    /// each `t2` — e.g. the MEMS plate trajectory.
    pub fn dc_component(&self, var: usize) -> Vec<f64> {
        (0..self.t2.len())
            .map(|idx| {
                let s = self.var_samples(idx, var);
                s.iter().sum::<f64>() / s.len() as f64
            })
            .collect()
    }

    /// Bracketing index `i` with `t2[i] <= t < t2[i+1]` (clamped).
    fn bracket(&self, t: f64) -> usize {
        let n = self.t2.len();
        if t <= self.t2[0] {
            return 0;
        }
        if t >= self.t2[n - 1] {
            return n - 2;
        }
        self.t2
            .partition_point(|&v| v <= t)
            .saturating_sub(1)
            .min(n - 2)
    }

    /// Local frequency at an arbitrary time (linear interpolation).
    ///
    /// # Panics
    ///
    /// Panics when the result holds fewer than two points.
    pub fn omega_at(&self, t: f64) -> f64 {
        let i = self.bracket(t);
        let w = ((t - self.t2[i]) / (self.t2[i + 1] - self.t2[i])).clamp(0.0, 1.0);
        self.omega_hz[i] * (1.0 - w) + self.omega_hz[i + 1] * w
    }

    /// Warping function `φ(t)` in cycles at an arbitrary time. Quadratic
    /// within each interval (consistent with linearly varying ω), exactly
    /// matching the trapezoid accumulation at the knots.
    ///
    /// # Panics
    ///
    /// Panics when the result holds fewer than two points.
    pub fn phi_at(&self, t: f64) -> f64 {
        let i = self.bracket(t);
        let dt = self.t2[i + 1] - self.t2[i];
        let tau = (t - self.t2[i]).clamp(0.0, dt);
        let slope = (self.omega_hz[i + 1] - self.omega_hz[i]) / dt;
        self.phi[i] + self.omega_hz[i] * tau + 0.5 * slope * tau * tau
    }

    /// Reconstructs the univariate solution `x(t) = x̂(φ(t), t)` (paper
    /// eq. (17)) of variable `var` at the given times: band-limited
    /// interpolation along the warped axis, linear along `t2`.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range or the envelope has fewer than
    /// two points.
    pub fn reconstruct(&self, var: usize, ts: &[f64]) -> Vec<f64> {
        assert!(var < self.n, "variable index out of range");
        assert!(self.t2.len() >= 2, "need at least two envelope points");
        let mut samples = vec![0.0; self.n0];
        ts.iter()
            .map(|&t| {
                let i = self.bracket(t);
                let w = ((t - self.t2[i]) / (self.t2[i + 1] - self.t2[i])).clamp(0.0, 1.0);
                let xa = &self.states[i];
                let xb = &self.states[i + 1];
                for (s, slot) in samples.iter_mut().enumerate() {
                    let k = s * self.n + var;
                    *slot = xa[k] * (1.0 - w) + xb[k] * w;
                }
                let phase = self.phi_at(t).fract();
                fourier::interp::trig_interp_barycentric(&samples, phase)
            })
            .collect()
    }

    /// Number of stored envelope points.
    pub fn len(&self) -> usize {
        self.t2.len()
    }

    /// True when no points are stored (an empty run).
    pub fn is_empty(&self) -> bool {
        self.t2.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic envelope: constant unit-amplitude cosine at linearly
    /// rising frequency, n = 1 variable, N0 = 9.
    fn synthetic() -> EnvelopeResult {
        let n0 = 9;
        let t2: Vec<f64> = (0..11).map(|i| i as f64 * 0.1).collect();
        let omega: Vec<f64> = t2.iter().map(|&t| 10.0 + 5.0 * t).collect();
        // φ by exact integral of the linear ω.
        let phi: Vec<f64> = t2.iter().map(|&t| 10.0 * t + 2.5 * t * t).collect();
        let states: Vec<Vec<f64>> = t2
            .iter()
            .map(|_| {
                (0..n0)
                    .map(|s| (2.0 * std::f64::consts::PI * s as f64 / n0 as f64).cos())
                    .collect()
            })
            .collect();
        EnvelopeResult {
            n: 1,
            n0,
            t2,
            omega_hz: omega,
            phi,
            states,
            stats: EnvelopeStats::default(),
        }
    }

    #[test]
    fn frequency_range_and_interp() {
        let r = synthetic();
        let (lo, hi) = r.frequency_range();
        assert_eq!(lo, 10.0);
        assert_eq!(hi, 15.0);
        assert!((r.omega_at(0.55) - 12.75).abs() < 1e-12);
    }

    #[test]
    fn phi_interpolation_matches_exact_integral() {
        let r = synthetic();
        for &t in &[0.05, 0.23, 0.51, 0.99] {
            let want = 10.0 * t + 2.5 * t * t;
            assert!((r.phi_at(t) - want).abs() < 1e-10, "t={t}");
        }
    }

    #[test]
    fn reconstruction_is_chirped_cosine() {
        let r = synthetic();
        let ts: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let xs = r.reconstruct(0, &ts);
        for (&t, &x) in ts.iter().zip(xs.iter()) {
            let want = (2.0 * std::f64::consts::PI * (10.0 * t + 2.5 * t * t)).cos();
            assert!((x - want).abs() < 1e-9, "t={t}: {x} vs {want}");
        }
    }

    #[test]
    fn bivariate_shape() {
        let r = synthetic();
        let (t1, t2, v) = r.bivariate(0);
        assert_eq!(t1.len(), 9);
        assert_eq!(t2.len(), 11);
        assert_eq!(v.len(), 11);
        assert_eq!(v[0].len(), 9);
    }

    #[test]
    fn dc_component_of_cosine_is_zero() {
        let r = synthetic();
        for v in r.dc_component(0) {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn len_and_empty() {
        let r = synthetic();
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
    }
}
