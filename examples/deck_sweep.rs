//! Deck-driven sweeps from Rust: load the committed example deck, run it
//! on two workers, and print the VCO tuning curve.
//!
//! ```text
//! cargo run --release --example deck_sweep
//! ```
//!
//! The same experiment is available without writing any Rust at all:
//! `wampde-cli examples/decks/vco_sweep.ckt --jobs 2`.

use circuitdae::parse_deck;
use sweepkit::run_deck;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string("examples/decks/vco_sweep.ckt")?;
    let deck = parse_deck(&text)?;
    println!(
        "{} analyses x {} grid points",
        deck.analyses.len(),
        deck.sweeps.iter().map(|s| s.points).product::<usize>()
    );

    let outcome = run_deck(&deck, 2)?;

    // Analysis 0 is the `.shooting` directive: its freq_hz metric per
    // grid point is the VCO tuning curve.
    println!("control (V)   f_osc (kHz)");
    for rec in outcome.runs_of(0) {
        let f = rec.result.metric("freq_hz").expect("shooting reports freq");
        println!("  {:>7.2}     {:>9.2}", rec.values[0], f / 1e3);
    }
    Ok(())
}
