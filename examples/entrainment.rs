//! Mode locking (entrainment) and quasiperiodicity — §4.1's special cases.
//!
//! A van der Pol oscillator injected near its natural frequency locks to
//! the injection (constant beat-free response at the forcing frequency);
//! injected far away it beats (two-tone quasiperiodic response). Both
//! regimes are detected from the instantaneous-frequency trace of a
//! transient run.
//!
//! Run with `cargo run --release --example entrainment`.

use circuitdae::analytic::VanDerPol;
use shooting::{oscillator_steady_state, ShootingOptions};
use sigproc::instantaneous_frequency;
use transim::{run_transient, Integrator, StepControl, TransientOptions};

fn main() {
    // Natural frequency of the unforced oscillator.
    let vdp0 = VanDerPol::unforced(1.0);
    let orbit =
        oscillator_steady_state(&vdp0, &ShootingOptions::default()).expect("vdp oscillates");
    let f0 = orbit.frequency();
    println!("natural frequency f0 = {f0:.5} Hz\n");
    println!("  f_inj/f0   amplitude   mean f    spread    verdict");

    for &(ratio, ampl) in &[
        (1.02, 0.8), // close, strong: locks
        (1.05, 0.8), // close: locks
        (1.30, 0.3), // far, weak: beats
        (1.50, 0.3), // far: beats
    ] {
        let f_inj = ratio * f0;
        let vdp = VanDerPol::forced(1.0, ampl, f_inj);
        // Start on the unforced orbit and let the forcing act for many
        // periods; discard the first half as transient.
        let res = run_transient(
            &vdp,
            &orbit.x0,
            0.0,
            400.0 / f0,
            &TransientOptions {
                integrator: Integrator::Trapezoidal,
                step: StepControl::Fixed(1.0 / (200.0 * f0)),
                ..Default::default()
            },
        )
        .expect("transient");
        let half = res.times.len() / 2;
        let trace = instantaneous_frequency(&res.times[half..], &res.signal(0)[half..]);
        let mean = trace.freq_hz.iter().sum::<f64>() / trace.freq_hz.len() as f64;
        let (lo, hi) = trace.range();
        let spread = (hi - lo) / mean;
        // Locked: per-cycle frequency is pinned at f_inj with tiny spread.
        let locked = spread < 0.01 && (mean - f_inj).abs() / f_inj < 0.01;
        println!(
            "  {ratio:<9.2} {ampl:<10.2} {mean:<9.5} {spread:<9.1e} {}",
            if locked {
                "LOCKED to injection"
            } else {
                "quasiperiodic (beating)"
            }
        );
    }

    println!("\nIn WaMPDE terms (paper §4.1): the locked cases are ω0 = ω2 —");
    println!("mode locking emerges as the special case of a constant warped");
    println!("frequency equal to the forcing.");
}
