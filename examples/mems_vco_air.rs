//! Figures 10–12: the air-damped (modified) MEMS VCO.
//!
//! The varactor cavity is air-filled (heavily overdamped plate) and the
//! control is ≈1000× slower than the oscillator (1 ms period), so:
//! * Figure 10 — the frequency trace settles over the first ~0.5 ms and
//!   swings less (≈0.75–1.2 MHz);
//! * Figure 11 — the oscillation amplitude barely changes;
//! * Figure 12 — fixed-step transient at 50/100 points per cycle
//!   accumulates phase error, while the WaMPDE does not.
//!
//! Run with `cargo run --release --example mems_vco_air`.

use circuitdae::circuits::{self, MemsVcoConfig};
use circuitdae::Dae;
use shooting::{oscillator_steady_state, ShootingOptions};
use sigproc::phase_error_trace;
use transim::{run_fixed_per_cycle, Integrator};
use wampde::{solve_envelope, WampdeInit, WampdeOptions};

fn main() {
    let cfg = MemsVcoConfig::paper_air();
    let dae = circuits::mems_vco(cfg);
    let t_end = 3e-3; // the paper's 3 ms horizon

    let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default())
        .expect("unforced VCO oscillates");
    let nominal = circuits::nominal_period();

    let opts = WampdeOptions {
        harmonics: 9,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &opts);
    let t0 = std::time::Instant::now();
    let env = solve_envelope(&dae, &init, t_end, &opts).expect("envelope converges");
    let wampde_wall = t0.elapsed();

    // --- Figure 10. ---
    let (lo, hi) = env.frequency_range();
    println!("== Figure 10: modified VCO frequency modulation ==");
    println!(
        "range {:.3}–{:.3} MHz; settling visible in first control period:",
        lo / 1e6,
        hi / 1e6
    );
    for k in 0..=15 {
        let t = t_end * k as f64 / 15.0;
        println!("  t={:5.2} ms  f={:.3} MHz", t * 1e3, env.omega_at(t) / 1e6);
    }

    // --- Figure 11: amplitude nearly constant. ---
    let (_, _, surface) = env.bivariate(circuits::idx::V_TANK);
    let amps: Vec<f64> = surface
        .iter()
        .map(|row| {
            let max = row.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v));
            let min = row.iter().fold(f64::INFINITY, |m, v| m.min(*v));
            (max - min) / 2.0
        })
        .collect();
    let amax = amps.iter().fold(0.0_f64, |m, v| m.max(*v));
    let amin = amps.iter().fold(f64::INFINITY, |m, v| m.min(*v));
    println!("\n== Figure 11: bivariate voltage ==");
    println!(
        "oscillation amplitude varies only {:.2}–{:.2} V (vs the vacuum case's strong variation)",
        amin, amax
    );

    // --- Figure 12: phase error of fixed-step transient. ---
    println!("\n== Figure 12: phase error at 3 ms ==");
    // Reference: a finely resolved transient (1000 pts/cycle is the
    // paper's "comparable accuracy" baseline).
    let x0: Vec<f64> = env.states[0][0..dae.dim()].to_vec();
    let cycles = t_end / nominal;

    let t0 = std::time::Instant::now();
    let fine = run_fixed_per_cycle(&dae, &x0, nominal, cycles, 1000, Integrator::Trapezoidal)
        .expect("fine transient");
    let fine_wall = t0.elapsed();

    // WaMPDE reconstruction on a uniform grid for crossings.
    let probes: Vec<f64> = (0..600_000).map(|k| k as f64 / 600_000.0 * t_end).collect();
    let wam = env.reconstruct(circuits::idx::V_TANK, &probes);
    let (t_err, e_wam) = phase_error_trace(
        &fine.times,
        &fine.signal(circuits::idx::V_TANK),
        &probes,
        &wam,
    );
    let wam_final = e_wam.last().copied().unwrap_or(0.0);

    for pts in [50usize, 100] {
        let t0 = std::time::Instant::now();
        let coarse = run_fixed_per_cycle(&dae, &x0, nominal, cycles, pts, Integrator::Trapezoidal)
            .expect("coarse transient");
        let wall = t0.elapsed();
        let (te, ee) = phase_error_trace(
            &fine.times,
            &fine.signal(circuits::idx::V_TANK),
            &coarse.times,
            &coarse.signal(circuits::idx::V_TANK),
        );
        let at_03ms = sample_at(&te, &ee, 0.3e-3);
        let final_err = ee.last().copied().unwrap_or(0.0);
        println!(
            "  transient {pts:4} pts/cycle: phase error {at_03ms:+.3} cycles at 0.3 ms, {final_err:+.2} at 3 ms  ({:.2} s wall)",
            wall.as_secs_f64()
        );
    }
    println!(
        "  WaMPDE                  : phase error {:+.4} cycles at 0.3 ms, {:+.4} at 3 ms  ({:.2} s wall)",
        sample_at(&t_err, &e_wam, 0.3e-3),
        wam_final,
        wampde_wall.as_secs_f64()
    );
    println!(
        "  reference transient (1000 pts/cycle) took {:.2} s → speedup {:.0}×",
        fine_wall.as_secs_f64(),
        fine_wall.as_secs_f64() / wampde_wall.as_secs_f64()
    );
}

fn sample_at(ts: &[f64], vs: &[f64], t: f64) -> f64 {
    if ts.is_empty() {
        return 0.0;
    }
    let i = ts.partition_point(|&v| v <= t).min(ts.len() - 1);
    vs[i]
}
