//! Figures 1–6: the representational story of Section 3.
//!
//! * Figures 1–2: the two-tone AM signal needs 750 univariate samples but
//!   only a 15×15 = 225 bivariate grid;
//! * Figure 3: the sawtooth path recovers the univariate signal exactly;
//! * Figures 4–5: the FM signal's *unwarped* bivariate form undulates
//!   along t2 and defeats compact sampling;
//! * Figure 6: warping restores a compact representation.
//!
//! Run with `cargo run --release --example multitime_signals`.

use multitime::{am, fm};

fn main() {
    // --- Figures 1–2. ---
    let (uni, biv) = am::sample_counts(15);
    println!("== Figures 1–2: AM signal sampling ==");
    println!("univariate samples (15/cycle over T2): {uni}   (paper: 750)");
    println!("bivariate 15×15 grid:                  {biv}   (paper: 225)");
    println!(
        "reconstruction error: univariate(15/cyc) {:.2e}, bivariate(15×15) {:.2e}",
        am::univariate_error(15, 4000),
        am::bivariate_error(15, 4000)
    );
    println!("saving grows with rate separation T2/T1 — bivariate cost is flat.\n");

    // --- Figure 3. ---
    let grid = am::sample_bivariate(15);
    println!("== Figure 3: sawtooth-path reconstruction ==");
    println!(
        "max |ŷ(t mod T1, t mod T2) − y(t)| = {:.2e} over one slow period\n",
        grid.path_error(am::signal, am::T2, 2000)
    );

    // --- Figures 4–5: unwarped FM. ---
    println!("== Figures 4–5: FM signal, unwarped bivariate form ==");
    println!(
        "x(t) = cos(2πf0·t + k·cos(2πf2·t)), f0 = {} MHz, f2 = {} kHz, k = 8π",
        fm::F0 / 1e6,
        fm::F2 / 1e3
    );
    println!(
        "instantaneous frequency spans {:.2}–{:.2} MHz",
        (fm::F0 - fm::K * fm::F2) / 1e6,
        (fm::F0 + fm::K * fm::F2) / 1e6
    );
    println!(
        "undulations along t2 of the unwarped form: {} (≈ 2k/π = 16)",
        fm::undulation_count_t2(4000)
    );
    println!("unwarped grid reconstruction error:");
    for n2 in [9usize, 17, 33, 65, 129] {
        println!(
            "  9×{n2:3} grid → max error {:.3e}",
            fm::unwarped_grid_error(9, n2, 1000)
        );
    }

    // --- Figure 6: warped form. ---
    println!("\n== Figure 6: warped bivariate form ==");
    println!(
        "x̂2 on 9 samples + warping φ on 9 samples → max error {:.3e}",
        fm::warped_grid_error(9, 9, 1000)
    );
    println!("(the warped representation is compact: 18 numbers instead of >1000)");
}
