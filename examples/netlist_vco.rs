//! The paper's VCO described as a text netlist, run through shooting and
//! the WaMPDE — the "downstream user" workflow: no Rust circuit code.
//!
//! Run with `cargo run --release --example netlist_vco`.

use circuitdae::parse_netlist;
use shooting::{oscillator_steady_state, ShootingOptions};
use wampde::{solve_envelope, WampdeInit, WampdeOptions};

const UNFORCED: &str = "\
* LC-tank VCO, MEMS varactor at a constant 1.5 V control
L1  tank 0 10u
GN1 tank 0 5m 1.667m           ; i(v) = -5m*v + 1.667m*v^3
M1  tank 0 5n 1 1e-12 7.854e-7 2.4674 0.12106 DC(1.5)
";

const FORCED: &str = "\
* Same VCO, control swept 30x slower than the carrier
L1  tank 0 10u
GN1 tank 0 5m 1.667m
M1  tank 0 5n 1 1e-12 7.854e-7 2.4674 0.12106 SIN(7.0 5.75 25k -1.2763)
";

fn main() {
    let unforced = parse_netlist(UNFORCED).expect("unforced netlist parses");
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default())
        .expect("netlist VCO oscillates");
    println!(
        "netlist VCO: unforced oscillation at {:.1} kHz (paper: ~750 kHz)",
        orbit.frequency() / 1e3
    );

    let forced = parse_netlist(FORCED).expect("forced netlist parses");
    let opts = WampdeOptions::default();
    let init = WampdeInit::from_orbit(&orbit, &opts);
    let env = solve_envelope(&forced, &init, 80e-6, &opts).expect("envelope converges");
    let (lo, hi) = env.frequency_range();
    println!(
        "WaMPDE envelope over 80 µs: frequency {:.3}–{:.3} MHz (swing {:.2}×), {} t2 steps",
        lo / 1e6,
        hi / 1e6,
        hi / lo,
        env.stats.steps
    );
}
