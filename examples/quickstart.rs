//! Quickstart: simulate the paper's MEMS-tuned VCO with the WaMPDE and
//! print the local-frequency trace.
//!
//! Run with `cargo run --release --example quickstart`.

use circuitdae::circuits::{self, MemsVcoConfig};
use shooting::{oscillator_steady_state, ShootingOptions};
use wampde::{solve_envelope, WampdeInit, WampdeOptions};

fn main() {
    // The VCO of Section 5: an LC tank (≈0.75 MHz) in parallel with a
    // cubic negative resistor, tuned by an electrostatically actuated
    // MEMS varactor. The control voltage sweeps sinusoidally with a
    // period 30× the oscillation period.
    let cfg = MemsVcoConfig::paper_vacuum();
    let dae = circuits::mems_vco(cfg);

    // Natural initial condition: the unforced oscillator's periodic
    // steady state, found by shooting (period + orbit + monodromy).
    let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default())
        .expect("unforced VCO oscillates");
    println!("unforced oscillation: {:.1} kHz", orbit.frequency() / 1e3);

    // WaMPDE envelope over two control periods (80 µs ≈ 60 carrier
    // cycles), stepping on the modulation time scale.
    let opts = WampdeOptions::default();
    let init = WampdeInit::from_orbit(&orbit, &opts);
    let env = solve_envelope(&dae, &init, 80e-6, &opts).expect("envelope converges");

    println!(
        "envelope: {} t2 steps, {} Newton iterations",
        env.stats.steps, env.stats.newton_iters
    );
    let (lo, hi) = env.frequency_range();
    println!(
        "local frequency sweeps {:.3} – {:.3} MHz (factor {:.2})",
        lo / 1e6,
        hi / 1e6,
        hi / lo
    );

    // The explicit local frequency ω(t2) — the paper's Figure 7.
    println!("\n  t2 (µs)   ω(t2) (MHz)   control V(t2)");
    for k in 0..=20 {
        let t = 80e-6 * k as f64 / 20.0;
        println!(
            "  {:7.2}   {:11.4}   {:13.3}",
            t * 1e6,
            env.omega_at(t) / 1e6,
            cfg.control.eval(t)
        );
    }

    // Reconstruct the univariate capacitor voltage at a few points
    // (paper eq. (17): x(t) = x̂(φ(t), t)).
    let ts: Vec<f64> = (0..5).map(|k| k as f64 * 1e-6).collect();
    let vs = env.reconstruct(circuits::idx::V_TANK, &ts);
    println!("\n  reconstructed v(tank): {vs:.3?}");
}
