//! Method cross-validation on the van der Pol oscillator: shooting,
//! autonomous harmonic balance and the WaMPDE (with constant control)
//! must all find the same limit cycle.
//!
//! Run with `cargo run --release --example van_der_pol`.

use circuitdae::analytic::VanDerPol;
use hb::{solve_autonomous, HbOptions};
use shooting::{oscillator_steady_state, ShootingOptions};
use wampde::{solve_envelope, T2StepControl, WampdeInit, WampdeOptions};

fn main() {
    println!("  μ      asymptotic   shooting     HB           WaMPDE");
    for &mu in &[0.1, 0.5, 1.0, 2.0] {
        let vdp = VanDerPol::unforced(mu);

        // Asymptotic (small-μ) period estimate.
        let approx = vdp.approx_period();

        // Shooting.
        let orbit =
            oscillator_steady_state(&vdp, &ShootingOptions::default()).expect("vdp oscillates");

        // Autonomous harmonic balance, seeded from the orbit.
        let hb_opts = HbOptions {
            harmonics: 12,
            ..Default::default()
        };
        let init = orbit.resample_uniform(2 * hb_opts.harmonics + 1);
        let hb_sol =
            solve_autonomous(&vdp, &init, orbit.frequency(), &hb_opts).expect("HB converges");

        // WaMPDE envelope with nothing to track: ω must stay put.
        let wam_opts = WampdeOptions {
            harmonics: 12,
            step: T2StepControl::Fixed(0.5),
            ..Default::default()
        };
        let wam_init = WampdeInit::from_orbit(&orbit, &wam_opts);
        let env = solve_envelope(&vdp, &wam_init, 20.0, &wam_opts).expect("envelope converges");
        let wam_period = 1.0 / env.omega_hz.last().expect("nonempty");

        println!(
            "  {mu:<5} {approx:<12.6} {:<12.6} {:<12.6} {:<12.6}",
            orbit.period,
            1.0 / hb_sol.freq_hz,
            wam_period,
        );
    }
    println!("\n(asymptotic 2π(1+μ²/16) is only valid for small μ; the three");
    println!(" numerical methods agree to their discretisation accuracy)");
}
