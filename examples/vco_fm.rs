//! Figures 7–9: the vacuum-damped MEMS VCO.
//!
//! Reproduces the paper's first experiment end to end:
//! * Figure 7 — local frequency ω(t2) swinging by a factor of ≈3;
//! * Figure 8 — the bivariate capacitor-voltage surface (amplitude and
//!   shape change with the control);
//! * Figure 9 — WaMPDE reconstruction overlaid on direct transient
//!   simulation (visually indistinguishable).
//!
//! Run with `cargo run --release --example vco_fm`.

use circuitdae::circuits::{self, MemsVcoConfig};
use circuitdae::Dae;
use shooting::{oscillator_steady_state, ShootingOptions};
use sigproc::instantaneous_frequency;
use transim::{run_transient, Integrator, StepControl, TransientOptions};
use wampde::{solve_envelope, WampdeInit, WampdeOptions};

fn main() {
    let cfg = MemsVcoConfig::paper_vacuum();
    let dae = circuits::mems_vco(cfg);
    let t_end = 80e-6;

    let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default())
        .expect("unforced VCO oscillates");

    let opts = WampdeOptions {
        harmonics: 9,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &opts);

    let t0 = std::time::Instant::now();
    let env = solve_envelope(&dae, &init, t_end, &opts).expect("envelope converges");
    let wampde_wall = t0.elapsed();

    // --- Figure 7: frequency modulation. ---
    let (lo, hi) = env.frequency_range();
    println!("== Figure 7: VCO frequency modulation ==");
    println!(
        "initial {:.3} MHz; range {:.3}–{:.3} MHz; swing factor {:.2} (paper: ~3)",
        env.omega_hz[0] / 1e6,
        lo / 1e6,
        hi / 1e6,
        hi / lo
    );

    // --- Figure 8: bivariate surface. ---
    let (t1g, t2g, surface) = env.bivariate(circuits::idx::V_TANK);
    let amp_first = surface.first().map(|row| peak(row)).unwrap_or(0.0);
    let amp_max = surface.iter().map(|row| peak(row)).fold(0.0_f64, f64::max);
    let amp_min = surface
        .iter()
        .map(|row| peak(row))
        .fold(f64::INFINITY, f64::min);
    println!("\n== Figure 8: bivariate capacitor voltage ==");
    println!(
        "{}×{} surface; oscillation amplitude varies {:.2}–{:.2} V (initial {:.2} V)",
        t2g.len(),
        t1g.len(),
        amp_min,
        amp_max,
        amp_first
    );
    println!("(the control changes amplitude AND shape, as the paper notes)");

    // --- Figure 9: WaMPDE vs transient overlay. ---
    let x0: Vec<f64> = env.states[0][0..dae.dim()].to_vec();
    let t0 = std::time::Instant::now();
    let tr = run_transient(
        &dae,
        &x0,
        0.0,
        t_end,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol: 1e-8,
                atol: 1e-12,
                dt_init: 1e-9,
                dt_min: 0.0,
                dt_max: 5e-8,
            },
            ..Default::default()
        },
    )
    .expect("transient reference");
    let transient_wall = t0.elapsed();

    let probes: Vec<f64> = (0..4000).map(|k| k as f64 / 4000.0 * t_end).collect();
    let wam: Vec<f64> = env.reconstruct(circuits::idx::V_TANK, &probes);
    let refv: Vec<f64> = probes
        .iter()
        .map(|&t| tr.sample(circuits::idx::V_TANK, t))
        .collect();
    let max_err = sigproc::max_abs_error(&wam, &refv);
    let amp = refv.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    println!("\n== Figure 9: WaMPDE vs transient ==");
    println!(
        "max |Δv| = {:.3} V on a ±{:.2} V waveform ({:.1} % of amplitude)",
        max_err,
        amp,
        100.0 * max_err / amp
    );
    println!(
        "wall time: WaMPDE {:.1} ms vs adaptive transient {:.1} ms ({} vs {} steps)",
        wampde_wall.as_secs_f64() * 1e3,
        transient_wall.as_secs_f64() * 1e3,
        env.stats.steps,
        tr.stats.steps
    );

    // Cross-check the frequency trace against zero crossings of the
    // transient waveform.
    let tr_freq = instantaneous_frequency(&tr.times, &tr.signal(circuits::idx::V_TANK));
    let (tlo, thi) = tr_freq.range();
    println!(
        "transient zero-crossing frequency range {:.3}–{:.3} MHz (WaMPDE {:.3}–{:.3})",
        tlo / 1e6,
        thi / 1e6,
        lo / 1e6,
        hi / 1e6
    );
}

fn peak(row: &[f64]) -> f64 {
    let max = row.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v));
    let min = row.iter().fold(f64::INFINITY, |m, v| m.min(*v));
    (max - min) / 2.0
}
