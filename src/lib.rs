//! # WaMPDE suite — multi-time simulation of voltage-controlled oscillators
//!
//! A full-stack Rust reproduction of *Narayan & Roychowdhury, "Multi-Time
//! Simulation of Voltage-Controlled Oscillators", DAC 1999*: the Warped
//! Multirate Partial Differential Equation (WaMPDE) and every substrate it
//! rests on, built from scratch.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`numkit`] | dense linear algebra, complex arithmetic, interpolation |
//! | [`sparsekit`] | sparse matrices, sparse LU, GMRES + ILU(0) |
//! | [`fourier`] | FFTs, Fourier series, spectral differentiation |
//! | [`circuitdae`] | the DAE trait, MNA circuit builder, the paper's VCOs |
//! | [`newtonkit`] | the shared damped-Newton engine (pattern-reusing refactorisation) |
//! | [`transim`] | Newton, DC operating point, transient integration |
//! | [`shooting`] | periodic steady state of free-running oscillators |
//! | [`hb`] | harmonic balance + the collocation core |
//! | [`mpde`] | the unwarped MPDE for non-autonomous multirate systems |
//! | [`wampde`] | **the WaMPDE itself**: envelope & quasiperiodic solvers |
//! | [`multitime`] | the paper's Section-3 signal examples (Figures 1–6) |
//! | [`sigproc`] | instantaneous frequency, phase error, spectra |
//! | [`wampde_bench`] | experiment drivers behind the benches and the `repro` binary |
//!
//! ## Quickstart
//!
//! ```no_run
//! use circuitdae::circuits::{self, MemsVcoConfig};
//! use shooting::{oscillator_steady_state, ShootingOptions};
//! use wampde::{solve_envelope, WampdeInit, WampdeOptions};
//!
//! // 1. The paper's VCO: LC tank + negative resistor + MEMS varactor.
//! let dae = circuits::mems_vco(MemsVcoConfig::paper_vacuum());
//!
//! // 2. Initial condition: unforced periodic steady state (shooting).
//! let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
//! let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default()).unwrap();
//!
//! // 3. WaMPDE envelope: track two control periods of FM.
//! let opts = WampdeOptions::default();
//! let init = WampdeInit::from_orbit(&orbit, &opts);
//! let env = solve_envelope(&dae, &init, 80e-6, &opts).unwrap();
//!
//! let (lo, hi) = env.frequency_range();
//! println!("local frequency sweeps {:.2}–{:.2} MHz", lo / 1e6, hi / 1e6);
//! ```
//!
//! See `examples/` for the full figure-by-figure reproductions and
//! `EXPERIMENTS.md` for measured-vs-paper results.

pub use circuitdae;
pub use fourier;
pub use hb;
pub use mpde;
pub use multitime;
pub use numkit;
pub use shooting;
pub use sigproc;
pub use sparsekit;
pub use transim;
pub use wampde;
pub use wampde_bench;
