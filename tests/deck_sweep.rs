//! Acceptance test of the deck/sweep subsystem: a `.sweep` over the VCO
//! control voltage with a `.wampde` analysis must produce aggregated
//! results that are byte-identical at `--jobs 4` and `--jobs 1`
//! (deterministic, index-ordered aggregation), and must match a direct
//! call of the `wampde` API at one grid point.

use circuitdae::{parse_deck, parse_netlist};
use shooting::{oscillator_steady_state, ShootingOptions};
use sweepkit::run_deck;
use wampde::{solve_envelope, WampdeInit, WampdeOptions};

/// Paper MEMS VCO cards; `.sweep` spans the DC control voltage (the VCO
/// control parameter), retuning the varactor per grid point.
const DECK: &str = "\
L1  tank 0 10u
GN1 tank 0 5m 1.667m
M1  tank 0 5n 1 1e-12 3e-7 2.47 0.121 DC(1.5)
.wampde 1u harmonics=4 steps=256
.sweep M1.control 1.2 1.8 3
";

#[test]
fn wampde_control_sweep_is_deterministic_and_matches_direct_api() {
    let deck = parse_deck(DECK).unwrap();
    assert_eq!(deck.sweeps[0].values(), vec![1.2, 1.5, 1.8]);

    let serial = run_deck(&deck, 1).unwrap();
    let parallel = run_deck(&deck, 4).unwrap();

    // --- Determinism: the aggregated outcomes are identical, down to the
    // bits of every waveform sample and the bytes of the rendered CSV.
    assert_eq!(serial, parallel);
    for (a, b) in serial.runs.iter().zip(parallel.runs.iter()) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.result.columns, b.result.columns);
        for (ra, rb) in a.result.rows.iter().zip(b.result.rows.iter()) {
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
    for ai in 0..serial.analysis_labels.len() {
        let (h1, r1) = serial.waveform_table(ai);
        let (h4, r4) = parallel.waveform_table(ai);
        let h1_refs: Vec<&str> = h1.iter().map(String::as_str).collect();
        let h4_refs: Vec<&str> = h4.iter().map(String::as_str).collect();
        let csv1 = wampde_bench::out::csv_string(&h1_refs, &r1);
        let csv4 = wampde_bench::out::csv_string(&h4_refs, &r4);
        assert_eq!(
            csv1.as_bytes(),
            csv4.as_bytes(),
            "analysis {ai} CSV differs"
        );
    }

    // --- Sanity: three grid points ran, and the sweep actually retunes
    // the oscillator (monotone rising local frequency).
    assert_eq!(serial.runs.len(), 3);
    let omegas: Vec<f64> = serial
        .runs
        .iter()
        .map(|r| r.result.metric("omega_max_hz").unwrap())
        .collect();
    assert!(omegas[0] < omegas[1] && omegas[1] < omegas[2], "{omegas:?}");

    // --- Cross-check against the wampde API driven by hand at the middle
    // grid point (control = 1.5 V): same shooting init, same options, so
    // the envelope must agree exactly.
    let dae = parse_netlist(
        "L1  tank 0 10u\n\
         GN1 tank 0 5m 1.667m\n\
         M1  tank 0 5n 1 1e-12 3e-7 2.47 0.121 DC(1.5)\n",
    )
    .unwrap();
    let orbit = oscillator_steady_state(
        &dae.frozen_at(0.0),
        &ShootingOptions {
            steps_per_period: 256,
            phase_var: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let opts = WampdeOptions {
        harmonics: 4,
        phase_var: 0,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &opts);
    let env = solve_envelope(&dae, &init, 1e-6, &opts).unwrap();

    let mid = &serial.runs[1];
    assert_eq!(mid.values, vec![1.5]);
    let res = &mid.result;
    assert_eq!(res.rows.len(), env.len());
    let t2_col = res.column("t2").unwrap();
    let omega_col = res.column("omega_hz").unwrap();
    let phi_col = res.column("phi_cycles").unwrap();
    for (idx, row) in res.rows.iter().enumerate() {
        assert_eq!(row[t2_col].to_bits(), env.t2[idx].to_bits(), "t2[{idx}]");
        assert_eq!(
            row[omega_col].to_bits(),
            env.omega_hz[idx].to_bits(),
            "omega[{idx}]"
        );
        assert_eq!(row[phi_col].to_bits(), env.phi[idx].to_bits(), "phi[{idx}]");
    }
}
