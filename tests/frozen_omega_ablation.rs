//! The motivating negative result (paper Section 3 / [Roy99]): an
//! *unwarped* multirate formulation — here the WaMPDE with its frequency
//! frozen and the phase condition dropped — cannot represent the VCO's FM
//! compactly. The warped (free-ω) run tracks the modulation; the frozen
//! run degrades badly at identical discretisation cost.

use circuitdae::circuits::{self, MemsVcoConfig};
use shooting::{oscillator_steady_state, ShootingOptions};
use transim::{run_transient, Integrator, StepControl, TransientOptions};
use wampde::{solve_envelope, OmegaMode, T2StepControl, WampdeInit, WampdeOptions};

#[test]
fn frozen_omega_cannot_track_fm() {
    let cfg = MemsVcoConfig::paper_vacuum();
    let dae = circuits::mems_vco(cfg);
    // 8 µs is enough for the control to pull the frequency well away from
    // its nominal value.
    let t_end = 8e-6;

    let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default()).unwrap();
    let f0 = orbit.frequency();

    let base = WampdeOptions {
        harmonics: 8,
        step: T2StepControl::Fixed(0.25e-6),
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &base);

    // Transient reference.
    let x0: Vec<f64> = init.samples[0].clone();
    let tr = run_transient(
        &dae,
        &x0,
        0.0,
        t_end,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol: 1e-7,
                atol: 1e-12,
                dt_init: 1e-9,
                dt_min: 0.0,
                dt_max: 5e-8,
            },
            ..Default::default()
        },
    )
    .unwrap();
    let probes: Vec<f64> = (0..800).map(|k| k as f64 / 800.0 * t_end).collect();
    let refv: Vec<f64> = probes
        .iter()
        .map(|&t| tr.sample(circuits::idx::V_TANK, t))
        .collect();
    let amp = refv.iter().fold(0.0_f64, |m, v| m.max(v.abs()));

    // Free (warped) run.
    let free = solve_envelope(&dae, &init, t_end, &base).unwrap();
    let free_err = sigproc::max_abs_error(&free.reconstruct(circuits::idx::V_TANK, &probes), &refv);

    // Frozen-ω run at identical discretisation. It may fail outright; if
    // it survives, its reconstruction must be far worse.
    let frozen_opts = WampdeOptions {
        omega_mode: OmegaMode::Frozen(f0),
        ..base
    };
    match solve_envelope(&dae, &init, t_end, &frozen_opts) {
        Err(_) => {
            // Newton breakdown is an acceptable demonstration of failure.
        }
        Ok(frozen) => {
            let frozen_err =
                sigproc::max_abs_error(&frozen.reconstruct(circuits::idx::V_TANK, &probes), &refv);
            assert!(
                frozen_err > 5.0 * free_err,
                "frozen-ω error {frozen_err} should dwarf free-ω error {free_err}"
            );
            assert!(
                frozen_err > 0.3 * amp,
                "frozen-ω error {frozen_err} should be amplitude-scale (amp {amp})"
            );
        }
    }

    // The warped run stays accurate.
    assert!(
        free_err < 0.08 * amp,
        "free-ω error {free_err} vs amplitude {amp}"
    );
}
