//! Cross-method validation: shooting, autonomous harmonic balance and the
//! WaMPDE must agree on the periodic steady state of free-running
//! oscillators — they are three discretisations of the same object.

use circuitdae::analytic::VanDerPol;
use circuitdae::circuits::{self, MemsVcoConfig};
use hb::{solve_autonomous, HbOptions};
use shooting::{oscillator_steady_state, ShootingOptions};
use wampde::{solve_envelope, T2Integrator, T2StepControl, WampdeInit, WampdeOptions};

#[test]
fn vdp_three_methods_one_period() {
    let vdp = VanDerPol::unforced(1.0);
    let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();

    let hb_opts = HbOptions {
        harmonics: 12,
        ..Default::default()
    };
    let init = orbit.resample_uniform(2 * hb_opts.harmonics + 1);
    let hb_sol = solve_autonomous(&vdp, &init, orbit.frequency(), &hb_opts).unwrap();

    // Backward Euler settles onto the envelope fixed point fastest (the
    // settled *value* is integrator-independent; BDF2's parasitic root
    // just decays the initial error more slowly).
    let wam_opts = WampdeOptions {
        harmonics: 12,
        step: T2StepControl::Fixed(0.5),
        integrator: T2Integrator::BackwardEuler,
        ..Default::default()
    };
    let wam_init = WampdeInit::from_orbit(&orbit, &wam_opts);
    let env = solve_envelope(&vdp, &wam_init, 25.0, &wam_opts).unwrap();
    let wam_freq = *env.omega_hz.last().unwrap();

    let f0 = orbit.frequency();
    assert!(
        (hb_sol.freq_hz - f0).abs() / f0 < 2e-3,
        "HB {} vs shooting {f0}",
        hb_sol.freq_hz
    );
    assert!(
        (wam_freq - f0).abs() / f0 < 2e-3,
        "WaMPDE {wam_freq} vs shooting {f0}"
    );
    // HB and the settled WaMPDE solve the *same* collocated equations, so
    // they agree much more tightly with each other.
    assert!(
        (wam_freq - hb_sol.freq_hz).abs() / f0 < 1e-5,
        "WaMPDE {wam_freq} vs HB {}",
        hb_sol.freq_hz
    );
}

#[test]
fn lc_vco_frequency_against_design_formula() {
    // All engines should sit near 1/(2π√(LC)) (small nonlinearity shift).
    let dae = circuits::lc_vco();
    let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
    let f_design = 1.0 / circuits::nominal_period();
    assert!(
        (orbit.frequency() - f_design).abs() / f_design < 0.01,
        "shooting {} vs design {f_design}",
        orbit.frequency()
    );
}

#[test]
fn mems_vco_constant_control_matches_static_formula() {
    // The unforced oscillation frequency must track the varactor law
    // C(y*) at the static plate displacement.
    for v in [1.0_f64, 1.5, 3.0] {
        let cfg = MemsVcoConfig::constant(v);
        let dae = circuits::mems_vco(cfg);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let p = circuits::mems_vco_params(cfg);
        let f_static = circuits::tank_frequency(&p, p.static_displacement(v));
        assert!(
            (orbit.frequency() - f_static).abs() / f_static < 0.01,
            "V={v}: shooting {} vs static {f_static}",
            orbit.frequency()
        );
    }
}
