//! Section 4.1's special cases, observed on real waveforms: mode locking
//! (entrainment) of an injected oscillator, and the unlocked quasiperiodic
//! (beating) regime.

use circuitdae::analytic::VanDerPol;
use shooting::{oscillator_steady_state, ShootingOptions};
use sigproc::instantaneous_frequency;
use transim::{run_transient, Integrator, StepControl, TransientOptions};

fn forced_run(f_inj: f64, ampl: f64, f0: f64, x0: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let vdp = VanDerPol::forced(1.0, ampl, f_inj);
    let res = run_transient(
        &vdp,
        x0,
        0.0,
        300.0 / f0,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Fixed(1.0 / (150.0 * f0)),
            ..Default::default()
        },
    )
    .unwrap();
    let half = res.times.len() / 2;
    (res.times[half..].to_vec(), res.signal(0)[half..].to_vec())
}

#[test]
fn injection_near_natural_frequency_locks() {
    let vdp0 = VanDerPol::unforced(1.0);
    let orbit = oscillator_steady_state(&vdp0, &ShootingOptions::default()).unwrap();
    let f0 = orbit.frequency();

    let f_inj = 1.03 * f0;
    let (ts, xs) = forced_run(f_inj, 0.8, f0, &orbit.x0);
    let trace = instantaneous_frequency(&ts, &xs);
    let mean = trace.freq_hz.iter().sum::<f64>() / trace.freq_hz.len() as f64;
    let (lo, hi) = trace.range();

    // Locked: every cycle runs at the injection frequency.
    assert!(
        (mean - f_inj).abs() / f_inj < 5e-3,
        "mean {mean} vs injection {f_inj}"
    );
    assert!(
        (hi - lo) / mean < 2e-2,
        "cycle-frequency spread {:.3e} too large for a locked state",
        (hi - lo) / mean
    );
}

#[test]
fn weak_far_injection_beats() {
    let vdp0 = VanDerPol::unforced(1.0);
    let orbit = oscillator_steady_state(&vdp0, &ShootingOptions::default()).unwrap();
    let f0 = orbit.frequency();

    let f_inj = 1.45 * f0;
    let (ts, xs) = forced_run(f_inj, 0.25, f0, &orbit.x0);
    let trace = instantaneous_frequency(&ts, &xs);
    let mean = trace.freq_hz.iter().sum::<f64>() / trace.freq_hz.len() as f64;
    let (lo, hi) = trace.range();

    // Unlocked: the oscillator stays near its own frequency and the
    // per-cycle estimate wobbles (beat).
    assert!(
        (mean - f0).abs() < (mean - f_inj).abs(),
        "mean {mean} should stay nearer f0 {f0} than injection {f_inj}"
    );
    assert!(
        (hi - lo) / mean > 2e-2,
        "expected visible beat wobble, got spread {:.3e}",
        (hi - lo) / mean
    );
}
