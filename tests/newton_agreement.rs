//! Acceptance tests of the shared `newtonkit` Newton layer: every
//! solver's Newton iteration now runs on one engine, so
//!
//! * converged solutions agree across linear-solver backends on
//!   `ring_loaded_vco` (and the pattern-reusing sparse refactorisation
//!   changes *nothing* — reuse-on and reuse-off runs are bitwise
//!   identical, because numeric refactorisation replays the exact
//!   floating-point sequence of a fresh factorisation);
//! * an exhausted iteration budget surfaces the *same* canonical
//!   diagnostic (the configured budget in the error, the engine's
//!   "did not converge after N iterations" wording) from every solver;
//! * the new reuse counters are consistent wherever stats surface.

use circuitdae::circuits;
use linsolve::LinearSolverKind;
use mpde::{solve_envelope_mpde, AmForcing, MpdeOptions};
use shooting::{oscillator_steady_state, ShootingOptions};
use transim::{
    dc_operating_point, run_transient, Integrator, NewtonOptions, StepControl, TransientOptions,
    TransimError,
};
use wampde::{solve_envelope, T2StepControl, WampdeError, WampdeInit, WampdeOptions};

#[test]
fn dc_backends_agree_on_ring_vco() {
    let dae = circuits::ring_loaded_vco(6);
    let dense = dc_operating_point(&dae, &NewtonOptions::default()).unwrap();
    for kind in [
        LinearSolverKind::SparseLu,
        LinearSolverKind::gmres_default(),
    ] {
        let opts = NewtonOptions {
            linear_solver: kind,
            ..Default::default()
        };
        let x = dc_operating_point(&dae, &opts).unwrap();
        for (a, b) in dense.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", kind.label());
        }
    }
}

#[test]
fn symbolic_reuse_is_bitwise_invisible_on_ring_vco_transient() {
    // Same fixed-step sparse-LU transient with reuse on and off: the
    // refactorisation path must reproduce fresh factors bit for bit, so
    // the trajectories are *identical*, not merely close.
    let dae = circuits::ring_loaded_vco(6);
    let dc = dc_operating_point(&dae, &NewtonOptions::default()).unwrap();
    let mut x0 = dc;
    x0[0] += 0.5; // kick the tank
    let run = |reuse: bool| {
        let opts = TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Fixed(2.0e-8),
            newton: NewtonOptions {
                linear_solver: LinearSolverKind::SparseLu,
                reuse_symbolic: reuse,
                ..Default::default()
            },
        };
        run_transient(&dae, &x0, 0.0, 2.0e-6, &opts).unwrap()
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.times, without.times);
    for (a, b) in with.states.iter().zip(without.states.iter()) {
        assert_eq!(a, b, "bitwise-identical trajectories expected");
    }
    // The counters tell the two runs apart: one symbolic analysis for
    // the whole run vs none reused at all.
    assert_eq!(with.stats.factorisations, without.stats.factorisations);
    assert_eq!(with.stats.symbolic_reuses, with.stats.factorisations - 1);
    assert_eq!(without.stats.symbolic_reuses, 0);
}

#[test]
fn wampde_envelope_backends_agree_and_reuse_on_ring_vco() {
    let dae = circuits::ring_loaded_vco(4);
    let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
    let base = WampdeOptions {
        harmonics: 4,
        step: T2StepControl::Fixed(2.0e-6),
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &base);
    let dense = solve_envelope(&dae, &init, 1.0e-5, &base).unwrap();
    let sparse_opts = WampdeOptions {
        linear_solver: LinearSolverKind::SparseLu,
        ..base
    };
    let sparse = solve_envelope(&dae, &init, 1.0e-5, &sparse_opts).unwrap();
    assert_eq!(dense.omega_hz.len(), sparse.omega_hz.len());
    for (a, b) in dense.omega_hz.iter().zip(sparse.omega_hz.iter()) {
        assert!((a - b).abs() / a < 1e-9, "{a} vs {b}");
    }
    // The envelope's bordered Jacobian keeps its pattern along t2, so
    // the sparse run reuses symbolic analysis across (nearly) every
    // factorisation; dense has nothing to reuse.
    assert!(sparse.stats.factorisations > 0);
    assert!(
        sparse.stats.symbolic_reuses >= sparse.stats.factorisations / 2,
        "expected widespread reuse: {:?}",
        sparse.stats
    );
    assert_eq!(dense.stats.symbolic_reuses, 0);
    assert_eq!(dense.stats.newton_iters, sparse.stats.newton_iters);
}

#[test]
fn exhausted_budgets_surface_identical_diagnostics() {
    // Give every solver an impossible one-iteration budget at a tight
    // tolerance: each must report the *configured* budget in its error,
    // through the same engine wording.
    let budget = 1;
    let tight = NewtonOptions {
        max_iter: budget,
        abstol: 1e-300,
        reltol: 1e-300,
        ..Default::default()
    };

    // transim (DC path: the ladder's final stage propagates the error).
    // A nonlinear circuit whose operating point is away from the zero
    // start, so the one-iteration budget genuinely cannot converge.
    let mut ckt = circuitdae::Circuit::new();
    let a = ckt.node("a");
    ckt.add(circuitdae::Device::current_source(
        circuitdae::Circuit::GND,
        a,
        circuitdae::Waveform::Dc(1e-3),
    ));
    ckt.add(circuitdae::Device::tanh_conductor(
        a,
        circuitdae::Circuit::GND,
        -2e-3,
        0.5,
        1e-3,
    ));
    let dae = ckt.build().unwrap();
    let terr = dc_operating_point(&dae, &tight).unwrap_err();
    let TransimError::NewtonFailed { iterations, .. } = terr else {
        panic!("unexpected transim error {terr}");
    };
    assert_eq!(iterations, budget);

    // mpde (the t2 = 0 steady solve fails first).
    let mut ckt = circuitdae::Circuit::new();
    let n = ckt.node("out");
    ckt.add(circuitdae::Device::resistor(
        n,
        circuitdae::Circuit::GND,
        1.0e3,
    ));
    ckt.add(circuitdae::Device::capacitor(
        n,
        circuitdae::Circuit::GND,
        1.0e-9,
    ));
    ckt.add(circuitdae::Device::current_source(
        circuitdae::Circuit::GND,
        n,
        circuitdae::Waveform::Dc(0.0),
    ));
    let rc = ckt.build().unwrap();
    let forcing = AmForcing {
        node: 0,
        carrier_amplitude: 1.0e-3,
        mod_depth: 0.5,
        mod_freq_hz: 1.0e3,
    };
    let merr = solve_envelope_mpde(
        &rc,
        &forcing,
        1.0e6,
        1.0e-3,
        &MpdeOptions {
            harmonics: 3,
            newton: tight,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(merr, mpde::MpdeError::NewtonFailed { at_t2, .. } if at_t2 == 0.0),
        "unexpected mpde error {merr}"
    );

    // wampde (first fixed step cannot converge; budget reported).
    let orbit = oscillator_steady_state(&circuits::lc_vco(), &ShootingOptions::default()).unwrap();
    let wopts = WampdeOptions {
        harmonics: 3,
        step: T2StepControl::Fixed(1.0e-6),
        newton: tight,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &wopts);
    let werr = solve_envelope(&circuits::lc_vco(), &init, 1.0e-5, &wopts).unwrap_err();
    let WampdeError::NewtonFailed { iterations, .. } = werr else {
        panic!("unexpected wampde error {werr}");
    };
    assert_eq!(iterations, budget);
}

#[test]
fn hb_runs_on_the_shared_engine_with_reuse() {
    // Autonomous HB on the ring VCO: the bordered collocation solve
    // reaches the shooting frequency through the re-exported engine,
    // dense and sparse alike.
    let dae = circuits::ring_loaded_vco(4);
    let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
    let opts = hb::HbOptions {
        harmonics: 6,
        ..Default::default()
    };
    let init = orbit.resample_uniform(2 * opts.harmonics + 1);
    let dense = hb::solve_autonomous(&dae, &init, orbit.frequency(), &opts).unwrap();
    let sparse_opts = hb::HbOptions {
        newton: NewtonOptions {
            linear_solver: LinearSolverKind::SparseLu,
            ..Default::default()
        },
        ..opts
    };
    let sparse = hb::solve_autonomous(&dae, &init, orbit.frequency(), &sparse_opts).unwrap();
    let rel = (dense.freq_hz - sparse.freq_hz).abs() / dense.freq_hz;
    assert!(rel < 1e-9, "{} vs {}", dense.freq_hz, sparse.freq_hz);
    let rel_shoot = (dense.freq_hz - orbit.frequency()).abs() / orbit.frequency();
    assert!(
        rel_shoot < 1e-3,
        "hb {} vs shooting {}",
        dense.freq_hz,
        orbit.frequency()
    );
}
