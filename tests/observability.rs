//! Workspace-level acceptance tests for the `obskit` instrumentation
//! layer (see `docs/OBSERVABILITY.md`).
//!
//! The contract under test: tracing is *observation only*. Installing a
//! recorder around a deck sweep must change no artifact byte, the
//! exported Chrome trace and metrics JSONL must round-trip through the
//! suite's own JSON parser, and a disabled thread must record nothing.

use std::sync::Arc;
use sweepkit::{parse_json, run_deck, run_deck_with, Json, SweepConfig};
use wampde_bench::out::csv_string;

/// Small driven-RC sweep: three grid points, one transient analysis —
/// cheap enough to run traced and untraced in one test, rich enough to
/// exercise sweep → job → analysis → time-step → newton → factor.
const RC_DECK: &str = "V1 in 0 SIN(0 5 1k)\n\
                       R1 in out 1k\n\
                       C1 out 0 1u\n\
                       .tran 2m dt=20u\n\
                       .sweep R1 1k 3k 3\n";

fn traced_run(deck_text: &str) -> (sweepkit::SweepRun, Arc<obskit::CollectingRecorder>) {
    let deck = circuitdae::parse_deck(deck_text).unwrap();
    let rec = Arc::new(obskit::CollectingRecorder::new());
    let run = {
        let _g = obskit::install(rec.clone() as Arc<dyn obskit::Recorder>);
        run_deck_with(&deck, &SweepConfig::default(), None).unwrap()
    };
    (run, rec)
}

#[test]
fn traced_sweep_artifacts_are_byte_identical_to_untraced() {
    let deck = circuitdae::parse_deck(RC_DECK).unwrap();
    let plain = run_deck(&deck, 2).unwrap();
    let (traced, rec) = traced_run(RC_DECK);
    assert!(!rec.is_empty(), "the traced run must actually record");

    assert_eq!(plain, traced.outcome, "outcomes must match exactly");
    for ai in 0..plain.analysis_labels.len() {
        let (h, r) = plain.waveform_table(ai);
        let (ht, rt) = traced.outcome.waveform_table(ai);
        let h: Vec<&str> = h.iter().map(String::as_str).collect();
        let ht: Vec<&str> = ht.iter().map(String::as_str).collect();
        assert_eq!(
            csv_string(&h, &r).into_bytes(),
            csv_string(&ht, &rt).into_bytes(),
            "analysis {ai}: traced CSV bytes differ"
        );
        let (h, r) = plain.summary_table(ai);
        let (ht, rt) = traced.outcome.summary_table(ai);
        let h: Vec<&str> = h.iter().map(String::as_str).collect();
        let ht: Vec<&str> = ht.iter().map(String::as_str).collect();
        assert_eq!(
            csv_string(&h, &r).into_bytes(),
            csv_string(&ht, &rt).into_bytes(),
            "analysis {ai}: traced summary bytes differ"
        );
    }
}

#[test]
fn parallel_factor_traces_cross_threads_and_change_no_bytes() {
    // A two-block BTF-rich matrix, so the parallel kernel actually fans
    // the diagonal blocks out to scoped worker threads.
    let mut t = sparsekit::Triplets::new(6, 6);
    for b in 0..2usize {
        for r in 0..3usize {
            let i = 3 * b + r;
            t.push(i, i, 4.0 + i as f64);
            t.push(i, 3 * b + (r + 1) % 3, 0.5 - 0.1 * i as f64);
        }
    }
    t.push(0, 4, 0.25); // upper off-block coupling keeps two blocks
    let csc = t.to_csc();
    let plan = sparsekit::OrderingPlan::for_matrix(&csc).unwrap();
    let serial = sparsekit::SparseLu::factor_ordered(&csc, &plan).unwrap();
    let untraced = sparsekit::SparseLu::factor_ordered_threads(&csc, &plan, 7).unwrap();

    let rec = Arc::new(obskit::CollectingRecorder::new());
    let traced = {
        let _g = obskit::install(rec.clone() as Arc<dyn obskit::Recorder>);
        let _sp = obskit::span("factor");
        sparsekit::SparseLu::factor_ordered_threads(&csc, &plan, 7).unwrap()
    };
    // Observation only: the traced and untraced parallel factors are
    // byte-identical to the serial one.
    assert_eq!(format!("{untraced:?}"), format!("{serial:?}"));
    assert_eq!(format!("{traced:?}"), format!("{serial:?}"));

    // The recorder handle crossed into the scoped workers: every BTF
    // block factored on a worker thread shows up as a `factor.block`
    // span with a valid id in the exported trace.
    let doc = parse_json(&rec.to_chrome_trace()).expect("trace must be valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let blocks = events
        .iter()
        .filter(|ev| {
            ev.get("ph").and_then(Json::as_str) == Some("X")
                && ev.get("name").and_then(Json::as_str) == Some("factor.block")
        })
        .count();
    assert_eq!(
        blocks,
        plan.nblocks(),
        "expected one factor.block span per BTF block"
    );

    // The same contract end to end: a bordered step Jacobian solved via
    // KLU under a 4-thread core budget (parallel stamping + assembly)
    // returns bit-identical solutions traced or not, and the parallel
    // counters land in the installed recorder.
    let jac = wampde_bench::StepJacobian::build(8, 2);
    let reference = jac.factor_solve(wampde::LinearSolverKind::Klu);
    let budget = linsolve::CoreBudget::new(4, 4);
    let plain = {
        let _b = budget.install();
        jac.factor_solve(wampde::LinearSolverKind::Klu)
    };
    let rec2 = Arc::new(obskit::CollectingRecorder::new());
    let traced = {
        let _g = obskit::install(rec2.clone() as Arc<dyn obskit::Recorder>);
        let _b = budget.install();
        jac.factor_solve(wampde::LinearSolverKind::Klu)
    };
    for (label, x) in [("untraced", &plain), ("traced", &traced)] {
        assert!(
            x.iter()
                .zip(reference.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{label} parallel klu solve differs from serial"
        );
    }
    assert!(
        rec2.counter("factor.parallel_blocks") > 0,
        "parallel factorisation must report its block count"
    );
    assert!(
        rec2.counter("stamp.parallel_partitions") > 0,
        "parallel stamping must report its partition count"
    );
}

#[test]
fn uninstalled_threads_see_tracing_disabled() {
    // This test thread never installs a recorder, so the whole fast
    // path must stay off and free functions must be inert no-ops.
    assert!(!obskit::enabled());
    assert!(obskit::current().is_none());
    let sp = obskit::span("orphan");
    assert!(sp.id().is_none());
    obskit::counter_add("orphan.counter", 1);
    obskit::observe("orphan.h", 1.0);
    obskit::point("orphan.point", &[]);
}

#[test]
fn chrome_trace_round_trips_with_full_span_hierarchy() {
    let (_, rec) = traced_run(RC_DECK);
    let doc = parse_json(&rec.to_chrome_trace()).expect("trace must be valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();

    let mut names = std::collections::BTreeSet::new();
    for ev in events {
        match ev.get("ph").and_then(Json::as_str).unwrap() {
            "X" => {
                let args = ev.get("args").expect("span event has args");
                match args.get("span_id") {
                    Some(Json::Num(id)) if *id >= 1.0 => {}
                    other => panic!("bad span_id: {other:?}"),
                }
                names.insert(ev.get("name").and_then(Json::as_str).unwrap().to_string());
            }
            "M" | "i" => {}
            other => panic!("unknown phase {other}"),
        }
    }
    for level in [
        "sweep",
        "job",
        "analysis",
        "time-step",
        "newton",
        "factor",
        "solve",
    ] {
        assert!(names.contains(level), "missing `{level}` span in {names:?}");
    }
}

#[test]
fn metrics_jsonl_round_trips_and_reports_convergence_traces() {
    let (run, rec) = traced_run(RC_DECK);
    let jsonl = rec.to_metrics_jsonl();

    let mut executed = None;
    let mut newton_points = 0u64;
    for line in jsonl.lines() {
        let row = parse_json(line).expect("every line is a JSON document");
        let kind = row.get("kind").and_then(Json::as_str).unwrap();
        let name = row.get("name").and_then(Json::as_str).unwrap();
        match kind {
            "counter" => {
                if name == "sweep.executed" {
                    executed = match row.get("value") {
                        Some(Json::Num(v)) => Some(*v as usize),
                        other => panic!("bad counter value {other:?}"),
                    };
                }
            }
            "histogram" => {
                for key in ["count", "sum", "min", "max"] {
                    assert!(
                        matches!(row.get(key), Some(Json::Num(_))),
                        "histogram `{name}` missing `{key}`"
                    );
                }
            }
            "point" => {
                let attrs = row.get("attrs").expect("point rows carry attrs");
                if name == "newton.iter" {
                    newton_points += 1;
                    for key in ["iter", "residual", "lambda", "factor"] {
                        assert!(attrs.get(key).is_some(), "newton.iter missing `{key}`");
                    }
                }
                if name == "step.accept" {
                    assert!(attrs.get("h").is_some(), "step.accept missing `h`");
                }
            }
            other => panic!("unknown metrics kind {other}"),
        }
    }
    assert_eq!(
        executed,
        Some(run.stats.jobs_total),
        "sweep.executed counter must equal the job count"
    );
    assert!(
        newton_points > 0,
        "the convergence trace must contain per-iteration newton.iter rows"
    );
    // The registry view and the JSONL dump come from the same data.
    assert_eq!(
        rec.counter("newton.solves"),
        rec.metrics().counter("newton.solves")
    );
}

#[test]
fn sweep_metrics_use_unified_run_stat_names() {
    let (run, _) = traced_run(RC_DECK);
    let metrics = &run.outcome.runs[0].result.metrics;
    let names: Vec<&str> = metrics.iter().map(|(n, _)| n.as_str()).collect();
    assert!(
        names.contains(&"newton_iters"),
        "per-job metrics must use the unified `newton_iters` name, got {names:?}"
    );
    assert!(
        !names.contains(&"newton_iterations"),
        "the deprecated `newton_iterations` spelling must not reappear"
    );
    for expected in ["steps", "rejected", "factorisations", "symbolic_reuses"] {
        assert!(
            names.contains(&expected),
            "missing `{expected}` in {names:?}"
        );
    }
}
