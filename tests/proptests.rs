//! Property-based tests on cross-crate invariants.

use circuitdae::{check_jacobians, Circuit, Dae, Device, Waveform};
use numkit::{Complex64, DMat};
use proptest::prelude::*;
use sparsekit::{SparseLu, Triplets};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT round-trip is the identity for arbitrary complex data.
    #[test]
    fn fft_roundtrip(re in prop::collection::vec(-1e3f64..1e3, 1..200),
                     im in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let n = re.len().min(im.len());
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::new(re[i], im[i])).collect();
        let back = fourier::fft::ifft_of_any_len(&fourier::fft::fft_of_any_len(&x));
        let scale = x.iter().map(|v| v.abs()).fold(1.0_f64, f64::max);
        for (a, b) in back.iter().zip(x.iter()) {
            prop_assert!((*a - *b).abs() < 1e-9 * scale);
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn fft_parseval(re in prop::collection::vec(-1e2f64..1e2, 2..128)) {
        let x: Vec<Complex64> = re.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let f = fourier::fft::fft_of_any_len(&x);
        let te: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let fe: f64 = f.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((te - fe).abs() <= 1e-8 * te.max(1.0));
    }

    /// Trigonometric interpolation reproduces any band-limited signal
    /// exactly between samples.
    #[test]
    fn trig_interp_band_limited(
        coeffs in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..5),
        probe in 0.0f64..1.0,
    ) {
        let m = coeffs.len();
        let n = 2 * m + 1;
        let f = |t: f64| -> f64 {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, (a, b))| {
                    let w = 2.0 * std::f64::consts::PI * (k + 1) as f64 * t;
                    a * w.cos() + b * w.sin()
                })
                .sum()
        };
        let samples: Vec<f64> = (0..n).map(|s| f(s as f64 / n as f64)).collect();
        let got = fourier::trig_interp(&samples, probe);
        let bary = fourier::interp::trig_interp_barycentric(&samples, probe);
        prop_assert!((got - f(probe)).abs() < 1e-8);
        prop_assert!((bary - f(probe)).abs() < 1e-8);
    }

    /// Sparse LU solves random diagonally dominant systems to the same
    /// answer as dense LU.
    #[test]
    fn sparse_lu_matches_dense(
        n in 3usize..25,
        seed in prop::collection::vec(-1.0f64..1.0, 200),
        rhs_seed in prop::collection::vec(-1.0f64..1.0, 25),
    ) {
        let mut t = Triplets::new(n, n);
        let mut dense = DMat::zeros(n, n);
        let mut k = 0;
        for i in 0..n {
            let d = 5.0 + seed[k % seed.len()].abs();
            t.push(i, i, d);
            dense[(i, i)] += d;
            k += 1;
            for _ in 0..3 {
                let j = ((seed[k % seed.len()].abs() * n as f64) as usize) % n;
                let v = seed[(k + 7) % seed.len()];
                t.push(i, j, v);
                dense[(i, j)] += v;
                k += 3;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| rhs_seed[i % rhs_seed.len()]).collect();
        let xs = SparseLu::factor(&t.to_csc()).unwrap().solve(&b).unwrap();
        let xd = numkit::lu::solve_dense(&dense, &b).unwrap();
        for (a, c) in xs.iter().zip(xd.iter()) {
            prop_assert!((a - c).abs() < 1e-8);
        }
    }

    /// Analytic device Jacobians match finite differences for random RC
    /// ladders with nonlinear conductors.
    #[test]
    fn random_ladder_jacobians_consistent(
        stages in 1usize..6,
        rs in prop::collection::vec(10.0f64..1e4, 6),
        cs in prop::collection::vec(1e-9f64..1e-6, 6),
        g1 in 1e-4f64..1e-2,
        x_seed in prop::collection::vec(-2.0f64..2.0, 16),
    ) {
        let mut ckt = Circuit::new();
        let mut prev = Circuit::GND;
        let mut first = None;
        for s in 0..stages {
            let node = ckt.node(format!("n{s}"));
            if s == 0 {
                ckt.add(Device::current_source(Circuit::GND, node, Waveform::Dc(1e-3)));
                first = Some(node);
            } else {
                ckt.add(Device::resistor(prev, node, rs[s % rs.len()]));
            }
            ckt.add(Device::capacitor(node, Circuit::GND, cs[s % cs.len()]));
            ckt.add(Device::resistor(node, Circuit::GND, rs[(s + 3) % rs.len()]));
            prev = node;
        }
        ckt.add(Device::cubic_conductor(first.unwrap(), Circuit::GND, g1, g1 / 3.0));
        let dae = ckt.build().unwrap();
        let x: Vec<f64> = (0..dae.dim()).map(|i| x_seed[i % x_seed.len()]).collect();
        prop_assert!(check_jacobians(&dae, &x) < 1e-5);
    }

    /// The warped FM representation reconstructs the FM signal exactly
    /// for arbitrary probe times.
    #[test]
    fn fm_warped_reconstruction_exact(t in 0.0f64..1e-4) {
        let x = multitime::fm::reconstruct_warped(t);
        let want = multitime::fm::signal(t);
        prop_assert!((x - want).abs() < 1e-8);
    }

    /// PCHIP never overshoots monotone data.
    #[test]
    fn pchip_monotone(mut ys in prop::collection::vec(0.0f64..1.0, 4..20)) {
        // Make the data monotone by prefix-summing.
        let mut acc = 0.0;
        for y in ys.iter_mut() {
            acc += *y + 1e-3;
            *y = acc;
        }
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let p = numkit::interp::Pchip::new(&xs, &ys).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..200 {
            let x = (ys.len() - 1) as f64 * k as f64 / 199.0;
            let v = p.eval(x);
            prop_assert!(v >= prev - 1e-9, "non-monotone at {x}");
            prev = v;
        }
    }

    /// AMD returns a valid permutation of the columns for arbitrary
    /// sparsity patterns (including empty and duplicate adjacency rows).
    #[test]
    fn amd_is_valid_permutation(
        n in 1usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..160),
    ) {
        let mut pattern = vec![Vec::new(); n];
        for &(a, b) in &edges {
            let (i, j) = (a % n, b % n);
            pattern[i].push(j);
            pattern[j].push(i);
        }
        let perm = sparsekit::amd(&pattern);
        prop_assert_eq!(perm.len(), n);
        let mut seen = vec![false; n];
        for &p in &perm {
            prop_assert!(p < n && !seen[p], "not a permutation: {:?}", perm);
            seen[p] = true;
        }
    }

    /// BTF on a structurally nonsingular matrix yields a valid row
    /// matching, a valid column permutation, and a monotone block
    /// partition covering every column.
    #[test]
    fn btf_outputs_are_valid_permutations(
        n in 1usize..30,
        seed in prop::collection::vec(-1.0f64..1.0, 120),
    ) {
        let mut t = Triplets::new(n, n);
        let mut k = 0;
        for i in 0..n {
            t.push(i, i, 2.0 + seed[k % seed.len()].abs()); // structural full rank
            k += 1;
            for _ in 0..2 {
                let j = ((seed[k % seed.len()].abs() * n as f64) as usize) % n;
                t.push(i, j, seed[(k + 5) % seed.len()]);
                k += 2;
            }
        }
        let form = sparsekit::btf(&t.to_csc()).unwrap();
        let mut seen_r = vec![false; n];
        let mut seen_c = vec![false; n];
        for c in 0..n {
            let r = form.match_row[c];
            prop_assert!(r < n && !seen_r[r]);
            seen_r[r] = true;
            let p = form.col_order[c];
            prop_assert!(p < n && !seen_c[p]);
            seen_c[p] = true;
        }
        prop_assert_eq!(form.block_ptr[0], 0);
        prop_assert_eq!(*form.block_ptr.last().unwrap(), n);
        prop_assert!(form.block_ptr.windows(2).all(|w| w[0] < w[1]));
    }

    /// The BTF+AMD-ordered, row-equilibrated LU solves random diagonally
    /// dominant systems to dense-LU accuracy (1e-12 of the solution
    /// scale).
    #[test]
    fn ordered_lu_matches_dense(
        n in 3usize..25,
        seed in prop::collection::vec(-1.0f64..1.0, 200),
        rhs_seed in prop::collection::vec(-1.0f64..1.0, 25),
    ) {
        let mut t = Triplets::new(n, n);
        let mut dense = DMat::zeros(n, n);
        let mut k = 0;
        for i in 0..n {
            let d = 5.0 + seed[k % seed.len()].abs();
            t.push(i, i, d);
            dense[(i, i)] += d;
            k += 1;
            for _ in 0..3 {
                let j = ((seed[k % seed.len()].abs() * n as f64) as usize) % n;
                let v = seed[(k + 7) % seed.len()];
                t.push(i, j, v);
                dense[(i, j)] += v;
                k += 3;
            }
        }
        let csc = t.to_csc();
        let plan = sparsekit::OrderingPlan::for_matrix(&csc).unwrap();
        let b: Vec<f64> = (0..n).map(|i| rhs_seed[i % rhs_seed.len()]).collect();
        let xs = SparseLu::factor_ordered(&csc, &plan).unwrap().solve(&b).unwrap();
        let xd = numkit::lu::solve_dense(&dense, &b).unwrap();
        let scale = xd.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for (a, c) in xs.iter().zip(xd.iter()) {
            prop_assert!((a - c).abs() < 1e-12 * scale, "{a} vs {c}");
        }
    }

    /// Numeric-only refactorisation on the ordered kernel is bitwise
    /// identical to a fresh ordered factorisation of the same values —
    /// the cache-reuse contract `linsolve::FactorCache` relies on.
    #[test]
    fn ordered_refactor_bitwise_identical(
        n in 3usize..20,
        seed in prop::collection::vec(-1.0f64..1.0, 160),
        bump in 0.5f64..2.0,
    ) {
        let build = |scale: f64| {
            let mut t = Triplets::new(n, n);
            let mut k = 0;
            for i in 0..n {
                t.push(i, i, (4.0 + seed[k % seed.len()].abs()) * scale);
                k += 1;
                for _ in 0..2 {
                    let j = ((seed[k % seed.len()].abs() * n as f64) as usize) % n;
                    t.push(i, j, seed[(k + 3) % seed.len()] * scale);
                    k += 2;
                }
            }
            t.to_csc()
        };
        let first = build(1.0);
        let second = build(bump); // same pattern, different values
        let plan = sparsekit::OrderingPlan::for_matrix(&first).unwrap();
        let mut lu = SparseLu::factor_ordered(&first, &plan).unwrap();
        lu.refactor(&second).unwrap();
        let fresh = SparseLu::factor_ordered(&second, &plan).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.25).collect();
        let xr = lu.solve(&b).unwrap();
        let xf = fresh.solve(&b).unwrap();
        for (a, c) in xr.iter().zip(xf.iter()) {
            prop_assert_eq!(a.to_bits(), c.to_bits(), "refactor drifted: {} vs {}", a, c);
        }
    }

    /// On real bordered ring_loaded_vco step Jacobians, the ordered KLU
    /// backend lands on the dense solution to 1e-12 of its scale.
    #[test]
    fn klu_matches_dense_on_ring_jacobians(stages in 2usize..7, harmonics in 1usize..3) {
        let jac = wampde_bench::StepJacobian::build(stages, harmonics);
        let dense = jac.factor_solve(wampde::LinearSolverKind::Dense);
        let klu = jac.factor_solve(wampde::LinearSolverKind::Klu);
        let scale = dense.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for (a, c) in klu.iter().zip(dense.iter()) {
            prop_assert!((a - c).abs() < 1e-12 * scale, "{a} vs {c}");
        }
    }

    /// Parallel BTF-block factorisation is bitwise identical to the
    /// serial kernel on random block-triangular matrices at every
    /// thread count — including counts above the block count.
    #[test]
    fn parallel_factor_ordered_bitwise_identical(
        sizes in prop::collection::vec(1usize..8, 1..5),
        seed in prop::collection::vec(-1.0f64..1.0, 240),
    ) {
        // Random BTF-rich matrix: diagonally dominant blocks on the
        // diagonal, coupling entries only from each block to the next,
        // so the strongly connected components are exactly the blocks.
        let n: usize = sizes.iter().sum();
        let starts: Vec<usize> = sizes
            .iter()
            .scan(0, |acc, &s| { let v = *acc; *acc += s; Some(v) })
            .collect();
        let mut t = Triplets::new(n, n);
        let mut k = 0;
        for (b, (&start, &size)) in starts.iter().zip(sizes.iter()).enumerate() {
            for r in 0..size {
                let i = start + r;
                t.push(i, i, 4.0 + seed[k % seed.len()].abs());
                k += 1;
                for _ in 0..2 {
                    let j = start + ((seed[k % seed.len()].abs() * size as f64) as usize) % size;
                    t.push(i, j, seed[(k + 7) % seed.len()]);
                    k += 2;
                }
                if b + 1 < sizes.len() {
                    let nb = sizes[b + 1];
                    let j = starts[b + 1]
                        + ((seed[k % seed.len()].abs() * nb as f64) as usize) % nb;
                    t.push(i, j, seed[(k + 3) % seed.len()]);
                    k += 1;
                }
            }
        }
        let csc = t.to_csc();
        let plan = sparsekit::OrderingPlan::for_matrix(&csc).unwrap();
        let serial = SparseLu::factor_ordered(&csc, &plan).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 0.5 + (i as f64) * 0.125).collect();
        let xs = serial.solve(&b).unwrap();
        for threads in [1usize, 2, 7] {
            let par = SparseLu::factor_ordered_threads(&csc, &plan, threads).unwrap();
            prop_assert_eq!(
                format!("{:?}", par),
                format!("{:?}", serial),
                "factors differ at {} threads",
                threads
            );
            let xp = par.solve(&b).unwrap();
            for (a, c) in xp.iter().zip(xs.iter()) {
                prop_assert_eq!(a.to_bits(), c.to_bits(), "{} threads: {} vs {}", threads, a, c);
            }
        }
    }

    /// Parallel per-mode LU construction of the block-circulant
    /// preconditioner is bitwise identical to the serial build over
    /// random cyclic shapes and block values, at every thread count.
    #[test]
    fn parallel_circulant_precond_bitwise_identical(
        blocks in 1usize..6,
        block_dim in 1usize..8,
        seed in prop::collection::vec(-1.0f64..1.0, 200),
    ) {
        let shape = linsolve::CyclicShape { blocks, block_dim };
        let n = shape.dim();
        let mut t = Triplets::new(n, n);
        let mut k = 0;
        for bi in 0..blocks {
            for r in 0..block_dim {
                let i = bi * block_dim + r;
                t.push(i, i, 3.0 + seed[k % seed.len()].abs());
                k += 1;
                // In-block fill plus a cyclic neighbour coupling.
                let j = bi * block_dim
                    + ((seed[k % seed.len()].abs() * block_dim as f64) as usize) % block_dim;
                t.push(i, j, seed[(k + 5) % seed.len()]);
                let jn = ((bi + 1) % blocks) * block_dim + r;
                t.push(i, jn, 0.25 * seed[(k + 11) % seed.len()]);
                k += 2;
            }
        }
        let a = t.to_csr();
        let serial = linsolve::BlockCirculantPrecond::from_csr(&a, shape).unwrap();
        let x: Vec<f64> = (0..n).map(|i| seed[i % seed.len()]).collect();
        let mut ys = vec![0.0; n];
        sparsekit::Precond::apply(&serial, &x, &mut ys);
        for threads in [1usize, 2, 7] {
            let par = linsolve::BlockCirculantPrecond::from_csr_threads(&a, shape, threads)
                .unwrap();
            prop_assert_eq!(
                format!("{:?}", par),
                format!("{:?}", serial),
                "mode LUs differ at {} threads",
                threads
            );
            let mut yp = vec![0.0; n];
            sparsekit::Precond::apply(&par, &x, &mut yp);
            for (a2, c) in yp.iter().zip(ys.iter()) {
                prop_assert_eq!(a2.to_bits(), c.to_bits(), "{} threads: {} vs {}", threads, a2, c);
            }
        }
    }

    /// Spectral differentiation of a random band-limited signal matches
    /// the analytic derivative at the grid points.
    #[test]
    fn spectral_diff_exact(
        coeffs in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..4),
    ) {
        let m = coeffs.len();
        let n = 2 * m + 1;
        let two_pi = 2.0 * std::f64::consts::PI;
        let f = |t: f64| -> f64 {
            coeffs.iter().enumerate().map(|(k, (a, b))| {
                let w = two_pi * (k + 1) as f64 * t;
                a * w.cos() + b * w.sin()
            }).sum()
        };
        let df = |t: f64| -> f64 {
            coeffs.iter().enumerate().map(|(k, (a, b))| {
                let kk = two_pi * (k + 1) as f64;
                let w = kk * t;
                -a * kk * w.sin() + b * kk * w.cos()
            }).sum()
        };
        let d = fourier::spectral_diff_matrix(n);
        let x: Vec<f64> = (0..n).map(|s| f(s as f64 / n as f64)).collect();
        let got = d.matvec(&x);
        for (s, g) in got.iter().enumerate() {
            let want = df(s as f64 / n as f64);
            prop_assert!((g - want).abs() < 1e-7 * (1.0 + want.abs()));
        }
    }
}
