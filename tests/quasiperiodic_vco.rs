//! Quasiperiodic (periodic-boundary) WaMPDE on the forced VCO: the
//! steady FM-quasiperiodic solution must match the settled envelope run.

use circuitdae::circuits::{self, MemsVcoConfig};
use shooting::{oscillator_steady_state, ShootingOptions};
use wampde::quasiperiodic::QpInit;
use wampde::{solve_envelope, solve_quasiperiodic, WampdeInit, WampdeOptions};

#[test]
fn qp_solution_matches_settled_envelope() {
    let cfg = MemsVcoConfig::paper_vacuum();
    let dae = circuits::mems_vco(cfg);
    let t2_period = 40e-6; // the control period

    let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default()).unwrap();

    let opts = WampdeOptions {
        harmonics: 5,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &opts);
    // Two control periods: the second is essentially periodic (the
    // underdamped plate settles within a few µs).
    let env = solve_envelope(&dae, &init, 2.0 * t2_period, &opts).unwrap();

    let n1 = 16;
    let qp_init = QpInit::from_envelope(&env, t2_period, n1);
    let qp = solve_quasiperiodic(&dae, &qp_init, t2_period, &opts).unwrap();

    // The QP frequency trace must match the envelope's over its final
    // period (same discretisation along t1, BE along t2 in both).
    let t_start = env.t2.last().unwrap() - t2_period;
    let mut worst: f64 = 0.0;
    for (m, &w_qp) in qp.omegas.iter().enumerate() {
        let t = t_start + t2_period * m as f64 / n1 as f64;
        let w_env = env.omega_at(t);
        worst = worst.max((w_qp - w_env).abs() / w_env);
    }
    assert!(worst < 0.05, "QP vs envelope frequency deviation {worst}");

    // Physical sanity: the QP frequency range brackets a ≈3× swing.
    let (lo, hi) = qp.frequency_range();
    assert!(hi / lo > 2.0, "QP swing {lo}..{hi}");
    assert!(lo > 0.5e6 && hi < 3.0e6, "QP absolute range {lo}..{hi}");
}
