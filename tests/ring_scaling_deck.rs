//! Acceptance test of the sparse linear-solver layer through the deck
//! subsystem: the committed `ring_scaling.ckt` deck selects the GMRES
//! backend via `.options solver=gmres`, and its results must agree with
//! the same deck forced onto dense LU.

use circuitdae::{parse_deck, Dae, LinearSolverKind};
use sweepkit::run_deck;

const DECK_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/examples/decks/ring_scaling.ckt"
);

const DECK_1000_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/examples/decks/ring_scaling_1000.ckt"
);

#[test]
fn ring_scaling_deck_gmres_matches_dense() {
    let text = std::fs::read_to_string(DECK_PATH).expect("committed deck exists");
    let deck = parse_deck(&text).unwrap();

    // The committed ladder now spans 16 stages: the tank node, 16 ladder
    // nodes, and the inductor branch current.
    assert_eq!(deck.base_circuit().unwrap().dim(), 18);

    // The committed deck selects GMRES for every analysis.
    assert_eq!(deck.analyses.len(), 2);
    for a in &deck.analyses {
        match a.solver() {
            LinearSolverKind::GmresIlu0 { restart, rtol, .. } => {
                assert_eq!(restart, 60);
                assert!((rtol - 1e-10).abs() < 1e-22);
            }
            other => panic!("deck must select gmres, got {other:?}"),
        }
    }

    let gmres = run_deck(&deck, 2).unwrap();

    // Same deck, every analysis forced onto dense LU.
    let mut dense_deck = parse_deck(&text).unwrap();
    for a in &mut dense_deck.analyses {
        a.set_solver(LinearSolverKind::Dense);
    }
    let dense = run_deck(&dense_deck, 2).unwrap();

    // Both grids ran: 2 points x 2 analyses.
    assert_eq!(gmres.runs.len(), 4);
    assert_eq!(dense.runs.len(), 4);

    // Backend agreement per grid point. The shooting frequency is a
    // Newton fixed point and must match tightly. The WaMPDE runs under
    // *adaptive* slow-time stepping, where sub-tolerance linear-solve
    // differences can steer slightly different step sequences through the
    // initial transient — so compare the *settled* local frequency (last
    // envelope row), not extrema over differently-sampled transients.
    for (g, d) in gmres.runs.iter().zip(dense.runs.iter()) {
        assert_eq!(g.point, d.point);
        assert_eq!(g.analysis, d.analysis);
        if let (Some(a), Some(b)) = (g.result.metric("freq_hz"), d.result.metric("freq_hz")) {
            let rel = (a - b).abs() / b;
            assert!(
                rel < 1e-6,
                "point {} shooting freq: gmres {a} vs dense {b} (rel {rel:e})",
                g.point
            );
            // The oscillator sits near 0.75 MHz (light loading).
            assert!((a - 0.75e6).abs() / 0.75e6 < 0.05, "freq {a}");
        }
        if let (Some(ga), Some(da)) = (g.result.column("omega_hz"), d.result.column("omega_hz")) {
            let a = g.result.rows.last().expect("nonempty envelope")[ga];
            let b = d.result.rows.last().expect("nonempty envelope")[da];
            let rel = (a - b).abs() / b;
            // The deck's short 2 µs envelope is still settling at t_stop
            // and runs under adaptive control at rtol 1e-4, so the
            // backends may sample the decay differently; agreement within
            // a few LTE tolerances is the correct deck-level contract
            // (fixed-step 1e-9 agreement is asserted in the wampde unit
            // tests).
            assert!(
                rel < 5e-3,
                "point {} settled omega: gmres {a} vs dense {b} (rel {rel:e})",
                g.point
            );
            // And both backends sit near the shooting frequency.
            assert!((a - 0.75e6).abs() / 0.75e6 < 0.05, "omega {a}");
        }
    }
}

/// The 1000-stage generated deck parses, selects the KLU backend for
/// its transient, and runs end to end. At dim 1002, dense LU is
/// infeasible and natural-order sparse LU fills badly — this deck only
/// stays a quick smoke because the BTF+AMD-ordered kernel keeps the
/// ladder's tridiagonal-plus-tank structure sparse.
#[test]
fn ring_scaling_1000_deck_runs_under_klu() {
    let text = std::fs::read_to_string(DECK_1000_PATH).expect("committed deck exists");
    let deck = parse_deck(&text).unwrap();

    assert_eq!(deck.base_circuit().unwrap().dim(), 1002);
    assert_eq!(deck.analyses.len(), 1);
    assert_eq!(deck.analyses[0].solver(), LinearSolverKind::Klu);

    let out = run_deck(&deck, 1).unwrap();
    assert_eq!(out.runs.len(), 1);
    let result = &out.runs[0].result;
    assert_eq!(result.analysis, "tran");
    // 0.5 µs span at dt=25 ns: the fixed-step grid plus the initial row.
    assert!(
        result.rows.len() >= 20,
        "expected a full transient, got {} rows",
        result.rows.len()
    );
    // Every Newton step factored the dim-1002 Jacobian through the
    // ordered kernel; the trajectory must come back finite everywhere.
    for row in &result.rows {
        for v in row {
            assert!(v.is_finite(), "non-finite sample in KLU transient");
        }
    }
}
