//! Acceptance tests of the shared `timekit` time-integration layer:
//! adaptive and tight-fixed-step runs of `transim` and `wampde` must
//! agree on `ring_loaded_vco`, and every solver must reject a
//! zero/negative step with the *same* canonical diagnostic (the
//! controller is resolved in one place, so the old per-solver default
//! asymmetries — `span·1e-12` vs `span·1e-9` floors — are gone).

use circuitdae::{circuits, Dae};
use shooting::{oscillator_steady_state, ShootingOptions};
use transim::{run_transient, Integrator, StepControl, TransientOptions};
use wampde::{solve_envelope, T2StepControl, WampdeInit, WampdeOptions};

/// The canonical `timekit` rejection text every solver must surface.
const FIXED_STEP_DIAGNOSTIC: &str = "fixed step must be positive";

/// One warped period of oscillating samples (so the wampde phase
/// condition is non-degenerate and the step policy is what gets judged).
fn oscillating_init(n0: usize) -> WampdeInit {
    let samples: Vec<Vec<f64>> = (0..n0)
        .map(|s| {
            let phase = 2.0 * std::f64::consts::PI * s as f64 / n0 as f64;
            vec![phase.cos(), 0.1 * phase.sin()]
        })
        .collect();
    WampdeInit::from_samples(samples, 0.75e6)
}

#[test]
fn all_solvers_reject_bad_fixed_steps_identically() {
    let dae = circuits::lc_vco();
    for bad in [0.0, -1.0e-9, f64::NAN] {
        // transim
        let opts = TransientOptions {
            step: StepControl::Fixed(bad),
            ..Default::default()
        };
        let err = run_transient(&dae, &[1.0, 0.0], 0.0, 1.0e-6, &opts).unwrap_err();
        assert!(
            err.to_string().contains(FIXED_STEP_DIAGNOSTIC),
            "transim({bad}): {err}"
        );

        // wampde
        let wopts = WampdeOptions {
            harmonics: 3,
            step: T2StepControl::Fixed(bad),
            ..Default::default()
        };
        let init = oscillating_init(wopts.n0());
        let err = solve_envelope(&dae, &init, 1.0e-6, &wopts).unwrap_err();
        assert!(
            err.to_string().contains(FIXED_STEP_DIAGNOSTIC),
            "wampde({bad}): {err}"
        );

        // mpde
        let forcing = mpde::AmForcing {
            node: 0,
            carrier_amplitude: 1.0e-3,
            mod_depth: 0.5,
            mod_freq_hz: 1.0e3,
        };
        let mopts = mpde::MpdeOptions {
            harmonics: 3,
            step: Some(timekit::StepPolicy::Fixed(bad)),
            ..Default::default()
        };
        let err = mpde::solve_envelope_mpde(&dae, &forcing, 1.0e6, 1.0e-3, &mopts).unwrap_err();
        assert!(
            err.to_string().contains(FIXED_STEP_DIAGNOSTIC),
            "mpde({bad}): {err}"
        );
    }
}

#[test]
fn adaptive_tolerance_validation_is_shared() {
    // A non-positive rtol is rejected with the same canonical text by
    // transim and wampde (resolved by the same timekit policy).
    let dae = circuits::lc_vco();
    let opts = TransientOptions {
        step: StepControl::adaptive(0.0, 1e-12),
        ..Default::default()
    };
    let terr = run_transient(&dae, &[1.0, 0.0], 0.0, 1.0e-6, &opts)
        .unwrap_err()
        .to_string();
    let wopts = WampdeOptions {
        harmonics: 3,
        step: T2StepControl::adaptive(0.0, 1e-9),
        ..Default::default()
    };
    let init = oscillating_init(wopts.n0());
    let werr = solve_envelope(&dae, &init, 1.0e-6, &wopts)
        .unwrap_err()
        .to_string();
    assert!(terr.contains("rtol must be positive"), "{terr}");
    assert!(werr.contains("rtol must be positive"), "{werr}");
}

#[test]
fn transim_adaptive_agrees_with_tight_fixed_on_ring_vco() {
    // Three carrier cycles of the ladder-loaded VCO: the LTE-adaptive
    // run must land on the tight fixed-step trajectory.
    let dae = circuits::ring_loaded_vco(4);
    let period = circuits::nominal_period();
    let t_end = 3.0 * period;
    // Kick the tank so the oscillation develops.
    let mut x0 = vec![0.0; dae.dim()];
    x0[0] = 1.0;
    let fixed = run_transient(
        &dae,
        &x0,
        0.0,
        t_end,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Fixed(period / 2000.0),
            ..Default::default()
        },
    )
    .unwrap();
    let adaptive = run_transient(
        &dae,
        &x0,
        0.0,
        t_end,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::adaptive(1e-7, 1e-12),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        adaptive.stats.steps < fixed.stats.steps,
        "adaptive {} vs fixed {}",
        adaptive.stats.steps,
        fixed.stats.steps
    );
    let amp = fixed.signal(0).iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    for k in 0..200 {
        let t = k as f64 / 200.0 * t_end;
        let a = adaptive.sample(0, t);
        let b = fixed.sample(0, t);
        assert!(
            (a - b).abs() < 0.02 * amp,
            "t={t:.3e}: adaptive {a} vs fixed {b} (amp {amp})"
        );
    }
}

#[test]
fn wampde_adaptive_agrees_with_tight_fixed_on_ring_vco() {
    // The envelope run of the same circuit: adaptive slow-time stepping
    // must settle onto the same local frequency as a tight fixed step.
    let dae = circuits::ring_loaded_vco(4);
    let orbit = oscillator_steady_state(
        &dae,
        &ShootingOptions {
            steps_per_period: 256,
            ..Default::default()
        },
    )
    .unwrap();
    let t2_end = 2.0e-6;
    let base = WampdeOptions {
        harmonics: 4,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &base);
    let fixed_opts = WampdeOptions {
        step: T2StepControl::Fixed(t2_end / 100.0),
        ..base
    };
    let fixed = solve_envelope(&dae, &init, t2_end, &fixed_opts).unwrap();
    let adaptive = solve_envelope(&dae, &init, t2_end, &base).unwrap();
    let f_fixed = *fixed.omega_hz.last().unwrap();
    let f_adapt = *adaptive.omega_hz.last().unwrap();
    let rel = (f_adapt - f_fixed).abs() / f_fixed;
    assert!(
        rel < 5e-3,
        "settled omega: adaptive {f_adapt} vs fixed {f_fixed} (rel {rel:e})"
    );
    // Both sit near the shooting frequency.
    let f0 = orbit.frequency();
    assert!((f_adapt - f0).abs() / f0 < 0.05, "{f_adapt} vs {f0}");
    assert!(adaptive.stats.steps > 0 && fixed.stats.steps == 100);
}
