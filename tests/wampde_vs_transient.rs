//! The paper's Figure 9 check, as a test: on the vacuum-damped MEMS VCO,
//! the reconstructed WaMPDE solution must overlay direct transient
//! simulation ("the match is so close that it is difficult to tell the
//! two waveforms apart").

use circuitdae::circuits::{self, MemsVcoConfig};
use circuitdae::Dae;
use shooting::{oscillator_steady_state, ShootingOptions};
use transim::{run_transient, Integrator, StepControl, TransientOptions};
use wampde::{solve_envelope, WampdeInit, WampdeOptions};

#[test]
fn vacuum_vco_reconstruction_overlays_transient() {
    let cfg = MemsVcoConfig::paper_vacuum();
    let dae = circuits::mems_vco(cfg);
    let t_end = 10e-6; // ≈ 7 carrier cycles with the frequency rising

    let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default()).unwrap();

    let opts = WampdeOptions {
        harmonics: 8,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &opts);
    let env = solve_envelope(&dae, &init, t_end, &opts).unwrap();

    // Transient reference started from the same univariate state
    // x(0) = x̂(0, 0) (the first collocation sample).
    let x0: Vec<f64> = env.states[0][0..dae.dim()].to_vec();
    let tr = run_transient(
        &dae,
        &x0,
        0.0,
        t_end,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol: 1e-7,
                atol: 1e-12,
                dt_init: 1e-9,
                dt_min: 0.0,
                dt_max: 5e-8,
            },
            ..Default::default()
        },
    )
    .unwrap();

    let probes: Vec<f64> = (0..1500).map(|k| k as f64 / 1500.0 * t_end).collect();
    let wam = env.reconstruct(circuits::idx::V_TANK, &probes);
    let refv: Vec<f64> = probes
        .iter()
        .map(|&t| tr.sample(circuits::idx::V_TANK, t))
        .collect();

    let amp = refv.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let max_err = sigproc::max_abs_error(&wam, &refv);
    assert!(amp > 1.5, "oscillation amplitude sane: {amp}");
    assert!(
        max_err < 0.05 * amp,
        "WaMPDE deviates from transient: {max_err} V on ±{amp} V"
    );
}

#[test]
fn frequency_trace_matches_transient_zero_crossings() {
    let cfg = MemsVcoConfig::paper_vacuum();
    let dae = circuits::mems_vco(cfg);
    let t_end = 15e-6;

    let unforced = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    let orbit = oscillator_steady_state(&unforced, &ShootingOptions::default()).unwrap();
    let opts = WampdeOptions {
        harmonics: 8,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(&orbit, &opts);
    let env = solve_envelope(&dae, &init, t_end, &opts).unwrap();

    let x0: Vec<f64> = env.states[0][0..dae.dim()].to_vec();
    let tr = run_transient(
        &dae,
        &x0,
        0.0,
        t_end,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol: 1e-7,
                atol: 1e-12,
                dt_init: 1e-9,
                dt_min: 0.0,
                dt_max: 5e-8,
            },
            ..Default::default()
        },
    )
    .unwrap();

    // Per-cycle frequency from the transient's zero crossings vs the
    // WaMPDE's explicit ω(t2) at the same times.
    let trace = sigproc::instantaneous_frequency(&tr.times, &tr.signal(circuits::idx::V_TANK));
    assert!(trace.freq_hz.len() > 5, "need several cycles");
    for (t, f) in trace.times.iter().zip(trace.freq_hz.iter()) {
        let w = env.omega_at(*t);
        assert!(
            (f - w).abs() / w < 0.05,
            "t={t}: transient cycle frequency {f} vs WaMPDE ω {w}"
        );
    }
}
