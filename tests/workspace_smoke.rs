//! Workspace linkability smoke test.
//!
//! One trivial call (or function-pointer reference, for the expensive
//! drivers) per member crate, so that a future manifest regression — a
//! crate dropped from the workspace, a renamed package, a broken
//! re-export in the facade — fails this test loudly instead of silently
//! shrinking the build.

#[test]
fn every_member_crate_is_linkable() {
    // numkit: dense kernels.
    let z = numkit::Complex64::new(3.0, 4.0);
    assert!((z.abs() - 5.0).abs() < 1e-12);
    let m = numkit::DMat::zeros(2, 2);
    assert_eq!(m.matvec(&[1.0, 1.0]), vec![0.0, 0.0]);

    // sparsekit: sparse kernels.
    let mut t = sparsekit::Triplets::new(2, 2);
    t.push(0, 0, 1.0);
    t.push(1, 1, 2.0);
    assert_eq!(t.to_csr().matvec(&[1.0, 1.0]), vec![1.0, 2.0]);

    // fourier: spectral kernels.
    let d = fourier::spectral_diff_matrix(3);
    let deriv_of_const = d.matvec(&[1.0, 1.0, 1.0]);
    assert!(deriv_of_const.iter().all(|v| v.abs() < 1e-10));

    // circuitdae: circuit builder.
    let mut ckt = circuitdae::Circuit::new();
    let _n0 = ckt.node("n0");
    assert_eq!(ckt.node_count(), 1);

    // transim: integrator metadata.
    assert_eq!(transim::Integrator::Trapezoidal.order(), 2);

    // shooting: options plumbing.
    assert!(shooting::ShootingOptions::default().steps_per_period > 0);

    // hb: collocation grid.
    let colloc = hb::Colloc::new(2, 3);
    assert!(!colloc.is_empty());

    // mpde: options plumbing.
    let _mpde_opts = mpde::MpdeOptions::default();

    // wampde: options plumbing.
    let _wampde_opts = wampde::WampdeOptions::default();

    // multitime: the paper's Section-3 FM signal at t = 0.
    assert!(multitime::fm::signal(0.0).is_finite());

    // sigproc: metrics.
    assert!((sigproc::rms(&[3.0, 3.0]) - 3.0).abs() < 1e-12);

    // wampde_bench: drivers are expensive whole-solver runs, so assert
    // linkability via function pointers without calling them.
    let _orbit: fn() -> shooting::PeriodicOrbit = wampde_bench::unforced_orbit;
    let _dir: fn() -> std::path::PathBuf = wampde_bench::out::repro_dir;
}

#[test]
fn facade_reexports_resolve() {
    // The facade must expose every member crate under its own name.
    let z = wampde_suite::numkit::Complex64::new(0.0, 1.0);
    assert!((z.abs() - 1.0).abs() < 1e-12);
    assert_eq!(wampde_suite::transim::Integrator::BackwardEuler.order(), 1);
    assert!(wampde_suite::multitime::fm::signal(0.0).is_finite());
    let _opts = wampde_suite::wampde::WampdeOptions::default();
    let _orbit: fn() -> wampde_suite::shooting::PeriodicOrbit =
        wampde_suite::wampde_bench::unforced_orbit;
}
