//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no network access to the
//! crates.io registry, so the real criterion cannot be fetched. This crate
//! implements the (small) API subset the workspace benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock timer so `cargo bench` still produces useful numbers and
//! `cargo bench --no-run` exercises the same compile surface as the real
//! harness. Swap the `criterion` entry in the workspace `Cargo.toml` back
//! to the registry version when network access is available; no bench
//! source needs to change.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Number of timed iterations per benchmark (the real criterion decides
/// this adaptively; the stand-in keeps it small because the workloads are
/// whole solver runs).
const TIMED_ITERS: u32 = 3;

/// Entry point handed to each bench function, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(None, &id.into(), f);
        self
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in uses a fixed small
    /// iteration count instead of criterion's adaptive sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is not configurable
    /// in the stand-in.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into(), f);
        self
    }

    /// Ends the group (a no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Per-benchmark timing context, mirroring `criterion::Bencher`.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    /// Calls `routine` once as warm-up, then `TIMED_ITERS` times timed,
    /// recording the best observed wall-clock duration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        for _ in 0..TIMED_ITERS {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            if self.best.is_none_or(|b| dt < b) {
                self.best = Some(dt);
            }
        }
    }
}

fn run_one(group: Option<&str>, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher { best: None };
    f(&mut b);
    match b.best {
        Some(best) => println!("bench: {label:<48} best of {TIMED_ITERS}: {best:?}"),
        None => println!("bench: {label:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// Collects bench functions into a runnable group, mirroring
/// `criterion_group!`. Only the simple `criterion_group!(name, fns...)`
/// form is supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
