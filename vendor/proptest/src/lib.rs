//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment for this repository has no network access to the
//! crates.io registry, so the real proptest cannot be fetched. This crate
//! implements the API subset the workspace property tests use:
//!
//! - the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute and `pattern in strategy` arguments,
//! - numeric [`Range`](std::ops::Range) strategies, tuple strategies, and
//!   [`prop::collection::vec`](crate::collection::vec) with either a fixed
//!   length or a length range,
//! - [`prop_assert!`] / [`prop_assert_eq!`] and
//!   [`ProptestConfig::with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with the case number, and generation is deterministic (seeded from the
//! test name, overridable via the `PROPTEST_STUB_SEED` environment
//! variable) so failures reproduce exactly in CI. Swap the `proptest`
//! entry in the workspace `Cargo.toml` back to the registry version when
//! network access is available; no test source needs to change.

pub mod strategy;
pub mod test_runner;

/// Strategy combinators namespace, mirroring `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, mirroring
/// `prop_assert!`. The stand-in panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `prop_assert_eq!`; panics immediately on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors `prop_assert_ne!`; panics immediately on match.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(expr)]          // optional
///     #[test]
///     fn name(pat in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let run = || { $body; };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest stand-in: {} failed on case {}/{} (seed: test name)",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}
