//! Value-generation strategies: the stand-in's equivalent of
//! `proptest::strategy`.
//!
//! A [`Strategy`] deterministically maps draws from a [`TestRng`] to
//! values. Ranges of numeric types, tuples of strategies, and
//! [`VecStrategy`] cover everything the workspace tests need.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of generated values, mirroring `proptest::strategy::Strategy`.
///
/// The real trait produces value *trees* that support shrinking; the
/// stand-in produces plain values.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $ty
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// A length specification for [`VecStrategy`]: either exact or a range,
/// mirroring `proptest::collection::SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec-length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s of values from an element strategy; built by
/// [`collection::vec`](crate::collection::vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
