//! Test configuration and the deterministic RNG behind the stand-in.

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs, mirroring
    /// `ProptestConfig::with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest default is 256; keep it.
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator seeded from the test name (FNV-1a), so every run —
/// locally and in CI — sees the same case sequence. Set the
/// `PROPTEST_STUB_SEED` environment variable to a `u64` to explore a
/// different sequence.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator for the named test.
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_STUB_SEED") {
            Ok(s) => s.parse().expect("PROPTEST_STUB_SEED must be a u64"),
            Err(_) => 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
        };
        let mut state = seed;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
